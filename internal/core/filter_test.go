package core

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/sema"
	"repro/internal/serial"
	"repro/internal/trace"
)

// The redundant-event filter (Section 5, filter.go) must be invisible:
// with it on or off, both engines must report the same serializability
// verdict, the same warnings at the same operations, and the same blame.
// These tests enforce that over random feasible traces and over crafted
// loop traces built to drive every fast-path branch (anchor repeats,
// decision-cache hits, cross-thread edge memos, outside-merge reuse).

// warningKey flattens the comparable part of a Warning: position,
// increasing flag, blamed method, and the refuted label list.
func warningKey(w *Warning) string {
	blamed := ""
	if w.Blamed != nil {
		blamed = string(w.Blamed.Label)
	}
	return fmt.Sprintf("%d/%v/%s/%v", w.OpIndex, w.Increasing, blamed, w.Refuted)
}

func warningKeys(ws []*Warning) []string {
	out := make([]string, len(ws))
	for i, w := range ws {
		out[i] = warningKey(w)
	}
	return out
}

// assertFilterInvisible checks the full matrix {Basic, Optimized,
// Aero} × {filter on, off} on one trace: verdicts match the offline
// oracle, and within each engine the filtered run reproduces the
// unfiltered run's warnings exactly (for Aero that is the single
// first-violation warning, position-only).
func assertFilterInvisible(t *testing.T, tr trace.Trace, ctx string) {
	t.Helper()
	want, _ := serial.Check(tr)
	for _, engine := range []Engine{Optimized, Basic, Aero} {
		off := CheckTrace(tr, Options{Engine: engine, NoFilter: true})
		on := CheckTrace(tr, Options{Engine: engine})
		if off.Filtered != 0 {
			t.Fatalf("%s engine %v: NoFilter run filtered %d events", ctx, engine, off.Filtered)
		}
		if on.Serializable != want || off.Serializable != want {
			t.Fatalf("%s engine %v: serializable on=%v off=%v oracle=%v\ntrace:\n%s",
				ctx, engine, on.Serializable, off.Serializable, want, tr)
		}
		onKeys, offKeys := warningKeys(on.Warnings), warningKeys(off.Warnings)
		if len(onKeys) != len(offKeys) {
			t.Fatalf("%s engine %v: %d warnings with filter, %d without\ntrace:\n%s",
				ctx, engine, len(onKeys), len(offKeys), tr)
		}
		for i := range onKeys {
			if onKeys[i] != offKeys[i] {
				t.Fatalf("%s engine %v warning %d: filter-on %s != filter-off %s\ntrace:\n%s",
					ctx, engine, i, onKeys[i], offKeys[i], tr)
			}
		}
	}
}

// TestFilterDifferentialMatrix runs the matrix over random feasible
// traces from the sema generator.
func TestFilterDifferentialMatrix(t *testing.T) {
	rng := rand.New(rand.NewSource(20080608))
	for i := 0; i < 300; i++ {
		tr := sema.RandomTrace(rng, sema.DefaultGenConfig())
		assertFilterInvisible(t, tr, fmt.Sprintf("iter %d", i))
	}
}

// loopTraces are crafted streams that exercise the fast-path branches
// far more densely than random traces do: in-transaction read/write
// loops (anchor repeats and the per-variable decision cache),
// cross-thread conflicting loops (edge-memo refreshes), outside-of-
// transaction polling (merge reuse), and loops interrupted by lock
// operations, new transactions, and conflicting writers (cache
// invalidation). Several end in genuine violations so blame is
// compared under heavy prior filtering.
func loopTraces() map[string]trace.Trace {
	const (
		t1, t2 = trace.Tid(1), trace.Tid(2)
		x, y   = trace.Var(0), trace.Var(1)
		m      = trace.Lock(0)
	)
	out := map[string]trace.Trace{}

	var rdLoop trace.Trace
	rdLoop = append(rdLoop, trace.Wr(t2, x))
	rdLoop = append(rdLoop, trace.Beg(t1, "loop"))
	for i := 0; i < 20; i++ {
		rdLoop = append(rdLoop, trace.Rd(t1, x))
	}
	rdLoop = append(rdLoop, trace.Fin(t1))
	out["txn-read-loop"] = rdLoop

	var wrLoop trace.Trace
	wrLoop = append(wrLoop, trace.Rd(t2, x))
	wrLoop = append(wrLoop, trace.Beg(t1, "loop"))
	for i := 0; i < 20; i++ {
		wrLoop = append(wrLoop, trace.Wr(t1, x))
	}
	wrLoop = append(wrLoop, trace.Fin(t1))
	out["txn-write-loop"] = wrLoop

	var sweep trace.Trace
	sweep = append(sweep, trace.Beg(t1, "sweep"))
	for round := 0; round < 6; round++ {
		for _, v := range []trace.Var{x, y, 2, 3} {
			sweep = append(sweep, trace.Rd(t1, v), trace.Wr(t1, v))
		}
	}
	sweep = append(sweep, trace.Fin(t1))
	out["txn-sweep-loop"] = sweep

	var outside trace.Trace
	outside = append(outside, trace.Wr(t2, x))
	for i := 0; i < 20; i++ {
		outside = append(outside, trace.Rd(t1, x))
	}
	outside = append(outside, trace.Acq(t1, m), trace.Rel(t1, m))
	for i := 0; i < 10; i++ {
		outside = append(outside, trace.Wr(t1, y))
	}
	out["outside-poll-loop"] = outside

	// Cache invalidation: a conflicting writer lands mid-loop, so the
	// previously validated decision must be re-checked, the new edge
	// inserted, and filtering resumed afterwards.
	var interrupt trace.Trace
	interrupt = append(interrupt, trace.Beg(t1, "loop"))
	for i := 0; i < 8; i++ {
		interrupt = append(interrupt, trace.Rd(t1, x))
	}
	interrupt = append(interrupt, trace.Wr(t2, x))
	for i := 0; i < 8; i++ {
		interrupt = append(interrupt, trace.Rd(t1, x))
	}
	interrupt = append(interrupt, trace.Fin(t1))
	out["mid-loop-writer"] = interrupt

	// A filtered loop followed by a genuine violation: t1's transaction
	// reads x before and after t2's two conflicting writes — the classic
	// non-serializable diamond — with redundant loops padding both sides.
	var viol trace.Trace
	viol = append(viol, trace.Beg(t1, "victim"))
	for i := 0; i < 10; i++ {
		viol = append(viol, trace.Rd(t1, x))
	}
	viol = append(viol, trace.Wr(t2, x))
	for i := 0; i < 10; i++ {
		viol = append(viol, trace.Wr(t1, y))
	}
	viol = append(viol, trace.Rd(t1, x))
	viol = append(viol, trace.Fin(t1))
	out["loop-then-violation"] = viol

	// Lock ops inside the loop: acquires are only filterable outside
	// transactions, so this drives the kind checks on both paths.
	var locks trace.Trace
	locks = append(locks, trace.Acq(t2, m), trace.Rel(t2, m)) // U(m) points at t2
	for i := 0; i < 6; i++ {
		locks = append(locks, trace.Acq(t1, m), trace.Rd(t1, x), trace.Rel(t1, m))
	}
	out["outside-lock-loop"] = locks

	return out
}

func TestFilterDifferentialLoopTraces(t *testing.T) {
	for name, tr := range loopTraces() {
		if err := trace.Validate(tr); err != nil {
			t.Fatalf("%s: crafted trace ill-formed: %v", name, err)
		}
		assertFilterInvisible(t, tr, name)
	}
}

// TestFilteredAccessAddsNothing pins the operational meaning of a filter
// hit: a redundant access changes neither the node count nor the edge
// count of H — the event is discarded before any graph work.
func TestFilteredAccessAddsNothing(t *testing.T) {
	const t1 = trace.Tid(1)
	const x = trace.Var(0)
	c := New(Options{})
	c.Step(trace.Beg(t1, "m"))
	c.Step(trace.Rd(t1, x)) // first read: performs graph work
	before := c.Stats()
	if got := c.Filtered(); got != 0 {
		t.Fatalf("unexpected filtering before the repeat: %d", got)
	}
	c.Step(trace.Rd(t1, x)) // repeat: must be discarded
	after := c.Stats()
	if got := c.Filtered(); got != 1 {
		t.Fatalf("repeat read not filtered: Filtered()=%d", got)
	}
	if after.Allocated != before.Allocated {
		t.Fatalf("filtered access allocated a node: %d -> %d", before.Allocated, after.Allocated)
	}
	if after.Edges != before.Edges {
		t.Fatalf("filtered access added an edge: %d -> %d", before.Edges, after.Edges)
	}

	// Same check through the decision cache: a third repeat hits the
	// memoized validation and must be equally invisible.
	c.Step(trace.Rd(t1, x))
	if got := c.Filtered(); got != 2 {
		t.Fatalf("cached repeat not filtered: Filtered()=%d", got)
	}
	final := c.Stats()
	if final.Allocated != before.Allocated || final.Edges != before.Edges {
		t.Fatalf("cached filtered access changed the graph: %+v -> %+v", before, final)
	}
}

// TestFilterLoopTracesFilterSubstantially guards against the filter
// silently degrading: the crafted loop traces must keep filtering a
// large share of their operations.
func TestFilterLoopTracesFilterSubstantially(t *testing.T) {
	for _, name := range []string{"txn-read-loop", "txn-write-loop", "txn-sweep-loop", "outside-poll-loop"} {
		tr := loopTraces()[name]
		r := CheckTrace(tr, Options{})
		if pct := float64(r.Filtered) / float64(len(tr)); pct < 0.5 {
			t.Errorf("%s: filtered only %d of %d ops (%.0f%%), want >= 50%%",
				name, r.Filtered, len(tr), 100*pct)
		}
	}
}
