package core

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/sema"
	"repro/internal/trace"
)

// TestNodeRecyclingStress runs far more transactions than the node pool
// would hold without GC, forcing heavy id recycling, and checks the
// verdict still matches the offline behaviour (serial trace → quiet).
func TestNodeRecyclingStress(t *testing.T) {
	x := trace.Var(0)
	c := New(Options{})
	for i := 0; i < 200_000; i++ {
		tid := trace.Tid(i%2 + 1)
		c.Step(trace.Beg(tid, "m"))
		c.Step(trace.Rd(tid, x))
		c.Step(trace.Wr(tid, x))
		c.Step(trace.Fin(tid))
	}
	if len(c.Warnings()) != 0 {
		t.Fatalf("serial transaction stream produced %d warnings", len(c.Warnings()))
	}
	st := c.Stats()
	if st.Allocated < 100_000 {
		t.Fatalf("allocated = %d; recycling not exercised", st.Allocated)
	}
	if st.MaxAlive > 8 {
		t.Fatalf("maxAlive = %d; GC failed to collect", st.MaxAlive)
	}
}

// TestRecyclingKeepsPrecision interleaves the serial churn with a real
// violation late in the run: stale weak references from recycled nodes
// must neither hide it nor corrupt it.
func TestRecyclingKeepsPrecision(t *testing.T) {
	x, y := trace.Var(0), trace.Var(1)
	c := New(Options{})
	for i := 0; i < 50_000; i++ {
		tid := trace.Tid(i%2 + 1)
		c.Step(trace.Beg(tid, "churn"))
		c.Step(trace.Wr(tid, x))
		c.Step(trace.Fin(tid))
	}
	// The classic RMW violation on a different variable.
	c.Step(trace.Beg(1, "late"))
	c.Step(trace.Rd(1, y))
	c.Step(trace.Wr(2, y))
	w := c.Step(trace.Wr(1, y))
	c.Step(trace.Fin(1))
	if w == nil || w.Method() != "late" {
		t.Fatalf("late violation missed or misblamed: %v", w)
	}
}

// TestDeepNesting pushes a deep stack of atomic blocks and checks only
// the blocks containing the cycle's root operation are refuted.
func TestDeepNesting(t *testing.T) {
	x := trace.Var(0)
	c := New(Options{})
	const depth = 40
	for i := 0; i < depth; i++ {
		c.Step(trace.Beg(1, trace.Label(fmt.Sprintf("lvl%d", i))))
	}
	c.Step(trace.Rd(1, x)) // root op: inside all 40
	c.Step(trace.Wr(2, x))
	c.Step(trace.Beg(1, "inner")) // opened after the root op
	w := c.Step(trace.Wr(1, x))
	if w == nil {
		t.Fatal("violation missed")
	}
	if len(w.Refuted) != depth {
		t.Fatalf("refuted %d blocks, want %d (inner must be spared)", len(w.Refuted), depth)
	}
	if w.Refuted[0] != "lvl0" || w.Method() != "lvl0" {
		t.Fatalf("outermost block must be blamed: %v", w.Refuted[:2])
	}
	for _, l := range w.Refuted {
		if l == "inner" {
			t.Fatal("inner block opened after the root op must not be refuted")
		}
	}
}

// TestLockOnlyCycle builds a cycle through lock operations alone: two
// transactions that each release a lock the other then acquires, in both
// directions.
func TestLockOnlyCycle(t *testing.T) {
	m1, m2 := trace.Lock(0), trace.Lock(1)
	tr := trace.Trace{
		trace.Beg(1, "A"),
		trace.Acq(1, m1), trace.Rel(1, m1), // A uses m1 first
		trace.Beg(2, "B"),
		trace.Acq(2, m1), trace.Rel(2, m1), // A ⇒ B on m1
		trace.Acq(2, m2), trace.Rel(2, m2), // B uses m2
		trace.Fin(2),
		trace.Acq(1, m2), trace.Rel(1, m2), // B ⇒ A on m2: cycle
		trace.Fin(1),
	}
	res := CheckTrace(tr, Options{})
	if res.Serializable {
		t.Fatal("lock-ordered cycle missed")
	}
	if w := res.Warnings[0]; w.Op.Kind != trace.Acquire {
		t.Fatalf("cycle should close at the acquire, closed at %v", w.Op)
	}
}

// TestMaxWarnings bounds warning accumulation.
func TestMaxWarnings(t *testing.T) {
	x := trace.Var(0)
	c := New(Options{MaxWarnings: 5})
	for i := 0; i < 100; i++ {
		c.Step(trace.Beg(1, "m"))
		c.Step(trace.Rd(1, x))
		c.Step(trace.Wr(2, x))
		c.Step(trace.Wr(1, x))
		c.Step(trace.Fin(1))
	}
	if got := len(c.Warnings()); got != 5 {
		t.Fatalf("warnings = %d, want capped at 5", got)
	}
}

// TestFirstOnlyStops verifies FirstOnly freezes the analysis after the
// first violation (used by the differential prefix tests).
func TestFirstOnlyStops(t *testing.T) {
	x := trace.Var(0)
	c := New(Options{FirstOnly: true})
	c.Step(trace.Beg(1, "m"))
	c.Step(trace.Rd(1, x))
	c.Step(trace.Wr(2, x))
	if w := c.Step(trace.Wr(1, x)); w == nil {
		t.Fatal("violation missed")
	}
	before := c.Stats()
	c.Step(trace.Fin(1))
	c.Step(trace.Wr(2, x))
	if c.Stats() != before {
		t.Fatal("FirstOnly checker kept mutating state")
	}
	if len(c.Warnings()) != 1 {
		t.Fatal("FirstOnly must record exactly one warning")
	}
}

// TestManyThreadsManyVars widens the state tables (dense slices must
// grow correctly for high thread and variable ids).
func TestManyThreadsManyVars(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	c := New(Options{})
	for i := 0; i < 20_000; i++ {
		tid := trace.Tid(rng.Intn(64) + 1)
		x := trace.Var(rng.Intn(5000))
		switch rng.Intn(2) {
		case 0:
			c.Step(trace.Rd(tid, x))
		case 1:
			c.Step(trace.Wr(tid, x))
		}
	}
	// Unary operations alone can never form a transactional cycle.
	if len(c.Warnings()) != 0 {
		t.Fatalf("unary-only stream produced %d warnings", len(c.Warnings()))
	}
}

// TestForkJoinTokensHitSparseTables drives the high-offset synthetic
// token variables through the sparse overflow path.
func TestForkJoinTokensHitSparseTables(t *testing.T) {
	var tr trace.Trace
	for u := trace.Tid(2); u < 40; u++ {
		tr = append(tr, trace.ForkOp(1, u), trace.Wr(u, 0), trace.JoinOp(1, u))
	}
	res := CheckTrace(tr, Options{})
	if !res.Serializable {
		t.Fatal("fork/join chain must be serializable")
	}
}

// TestEngineEquivalenceOnLongerTraces runs the basic and optimized
// engines over larger random traces than the default differential test.
func TestEngineEquivalenceOnLongerTraces(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	cfg := sema.GenConfig{Threads: 5, OpsPerThd: 60, Vars: 6, Locks: 3, PAtomic: 0.5, PLock: 0.4}
	for i := 0; i < 40; i++ {
		tr := sema.RandomTrace(rng, cfg)
		opt := CheckTrace(tr, Options{})
		bas := CheckTrace(tr, Options{Engine: Basic})
		if opt.Serializable != bas.Serializable {
			t.Fatalf("iter %d: engines disagree\n%s", i, tr)
		}
	}
}
