package core

import (
	"time"

	"repro/internal/span"
	"repro/internal/trace"
	"repro/internal/vc"
)

// This file implements the AeroDrome engine: single-pass atomicity
// checking with vector clocks and no happens-before graph, after Mathur
// & Viswanathan, "Atomicity Checking in Linear Time using Vector Clocks"
// (see PAPERS.md). Where Velodrome inserts graph edges and searches for
// cycles, AeroDrome keeps one clock object per transaction and detects
// the first violation as a clock comparison:
//
//   - Every operation of thread t ticks t's component of the running
//     transaction's clock, so a transaction owns the tick interval
//     [begin, now] of its thread.
//   - The tables L (last release per lock), W (last write per variable)
//     and R (last read per variable and thread) store *pointers* to
//     transaction objects, not snapshots. A conflict joins the stored
//     object's clock into the running transaction's clock in place.
//   - A violation fires exactly when a join source has transitively
//     observed a tick of the running transaction itself — the stored
//     object is ordered both before (by the conflict) and after (by the
//     observation) the transaction, a happens-before cycle.
//
// The one subtlety of the online setting is that a conflict can order a
// transaction after another that is *still running*: later knowledge
// acquired by the predecessor must keep flowing downstream. Objects
// therefore carry subscriber lists — when an object's clock grows, the
// growth is pushed (with the same violation check) to every object that
// joined from it while it could still grow. A push chain corresponds
// exactly to the graph paths the Velodrome engines walk, so AeroDrome
// reports its first warning at the same operation: both fire at the end
// of the minimal non-serializable prefix.
//
// AeroDrome is inherently first-violation: after a warning the clocks
// no longer describe an acyclic order, so the checker stops (the
// registry advertises ReportsAllViolations=false). Forensics are not
// supported — there is no cycle to annotate.

// aeroObj is one transaction's clock object. Unary (non-transactional)
// operations get objects too, possibly merged into a shared container
// (the Section 4.2 merge analog).
type aeroObj struct {
	vc    vc.Dense
	owner trace.Tid
	// begin is the owner's component at the transaction's first tick:
	// any observation of a tick >= begin is an observation of this
	// transaction (or, via program order, a successor — equally cyclic).
	begin uint64
	meta  *TxnMeta
	// subs are objects that joined from this one while it could still
	// grow and must be told about later growth.
	subs   []*aeroObj
	subSet map[*aeroObj]struct{} // dedupe once subs gets long
	// outs counts joins taken from this object by other objects; the
	// merge fast path requires 0 (the Reusable analog: extending an
	// object someone is already ordered after would forge orderings).
	outs int32
	// ups counts live subscriptions to still-growable sources: it is
	// incremented when this object subscribes to a growable source and
	// decremented when that source freezes. While positive, the clock
	// may still grow after the transaction ends; when it reaches zero on
	// an inactive object, the clock is final (see aeroChecker.freeze).
	// This replaces a sticky "was ever chained" bit, which kept every
	// subscriber list of a long join/fork chain alive for the whole run.
	ups int32
	// active: the transaction is still open (its clock grows by ticks).
	active bool
}

// mayGrow reports whether the object's clock can still change.
func (o *aeroObj) mayGrow() bool { return o.active || o.ups > 0 }

// aeroLockTable maps lock ids to objects (L).
type aeroLockTable struct{ dense []*aeroObj }

func (t *aeroLockTable) get(i int32) *aeroObj {
	if int(i) < len(t.dense) {
		return t.dense[i]
	}
	return nil
}

func (t *aeroLockTable) set(i int32, o *aeroObj) {
	if int(i) >= len(t.dense) {
		t.dense = append(t.dense, make([]*aeroObj, int(i)+1-len(t.dense))...)
	}
	t.dense[i] = o
}

// aeroVarTable maps variable ids to objects (W), with the same sparse
// overflow for fork/join token variables as varTable.
type aeroVarTable struct {
	dense  []*aeroObj
	sparse map[trace.Var]*aeroObj
}

func (t *aeroVarTable) get(x trace.Var) *aeroObj {
	if x >= 0 && x < denseVarLimit {
		if int(x) < len(t.dense) {
			return t.dense[x]
		}
		return nil
	}
	return t.sparse[x]
}

func (t *aeroVarTable) set(x trace.Var, o *aeroObj) {
	if x >= 0 && x < denseVarLimit {
		if int(x) >= len(t.dense) {
			t.dense = append(t.dense, make([]*aeroObj, int(x)+1-len(t.dense))...)
		}
		t.dense[x] = o
		return
	}
	if t.sparse == nil {
		t.sparse = map[trace.Var]*aeroObj{}
	}
	t.sparse[x] = o
}

// aeroReadTable is R: per variable, the last-read object of each
// thread, with a version counter per dense row for the decision cache.
type aeroReadTable struct {
	dense  [][]*aeroObj
	vers   []uint32
	sparse map[trace.Var][]*aeroObj
}

func (t *aeroReadTable) ver(x trace.Var) uint32 {
	if int(x) < len(t.vers) {
		return t.vers[x]
	}
	return 0
}

func (t *aeroReadTable) row(x trace.Var) []*aeroObj {
	if x >= 0 && x < denseVarLimit {
		if int(x) < len(t.dense) {
			return t.dense[x]
		}
		return nil
	}
	return t.sparse[x]
}

func (t *aeroReadTable) bump(x trace.Var) {
	if int(x) >= len(t.vers) {
		t.vers = append(t.vers, make([]uint32, int(x)+1-len(t.vers))...)
	}
	t.vers[x]++
}

func (t *aeroReadTable) set(x trace.Var, tid trace.Tid, o *aeroObj) {
	var row []*aeroObj
	if x >= 0 && x < denseVarLimit {
		if int(x) >= len(t.dense) {
			t.dense = append(t.dense, make([][]*aeroObj, int(x)+1-len(t.dense))...)
		}
		row = t.dense[x]
	} else {
		if t.sparse == nil {
			t.sparse = map[trace.Var][]*aeroObj{}
		}
		row = t.sparse[x]
	}
	if int(tid) >= len(row) {
		row = append(row, make([]*aeroObj, int(tid)+1-len(row))...)
	}
	row[tid] = o
	if x >= 0 && x < denseVarLimit {
		t.dense[x] = row
		t.bump(x)
	} else {
		t.sparse[x] = row
	}
}

// clear empties R(x, *): a write subsumes all prior reads — the writer
// joined them (and subscribed to the growable ones), so later conflicts
// reach them transitively through W(x).
func (t *aeroReadTable) clear(x trace.Var) {
	row := t.row(x)
	if row == nil {
		return
	}
	for i := range row {
		row[i] = nil
	}
	if x >= 0 && x < denseVarLimit {
		t.bump(x)
	}
}

// aeroFC is the per-variable decision cache (the Section 5 filter
// analog): pointer-identity compares prove a repeat access is a no-op —
// the re-join adds nothing (subscriptions keep the running object
// up to date with growable sources eagerly, with the violation check
// performed at growth time), and the table stores are idempotent.
type aeroFC struct {
	rdTid, wrTid int32 // tid+1; 0 = no entry
	rdW, rdCur   *aeroObj
	wrW, wrCur   *aeroObj
	wrVer        uint32
}

// aeroChecker is the AeroDrome engine behind the Checker interface.
type aeroChecker struct {
	common
	c    [][]frame  // open atomic blocks per thread (as optChecker)
	d    []int32    // open non-ignored blocks per thread
	cur  []*aeroObj // running object per thread
	l    aeroLockTable
	w    aeroVarTable
	r    aeroReadTable
	fc    []aeroFC
	work  []*aeroObj // propagation worklist, reused across events
	srcs  []*aeroObj // join-source scratch, reused across events
	fwork []*aeroObj // freeze-cascade worklist, reused across events
}

func (c *aeroChecker) obj(t trace.Tid) *aeroObj {
	if int(t) < len(c.cur) {
		return c.cur[t]
	}
	return nil
}

func (c *aeroChecker) setObj(t trace.Tid, o *aeroObj) {
	for int(t) >= len(c.cur) {
		c.cur = append(c.cur, nil)
	}
	c.cur[t] = o
}

func (c *aeroChecker) stack(t trace.Tid) []frame {
	if int(t) < len(c.c) {
		return c.c[t]
	}
	return nil
}

func (c *aeroChecker) setStack(t trace.Tid, fs []frame) {
	for int(t) >= len(c.c) {
		c.c = append(c.c, nil)
	}
	c.c[t] = fs
}

func (c *aeroChecker) depth(t trace.Tid) int32 {
	if int(t) < len(c.d) {
		return c.d[t]
	}
	return 0
}

func (c *aeroChecker) addDepth(t trace.Tid, delta int32) {
	for int(t) >= len(c.d) {
		c.d = append(c.d, 0)
	}
	c.d[t] += delta
}

// Step implements Checker.
func (c *aeroChecker) Step(op trace.Op) *Warning {
	if c.met == nil && c.opts.Spans == nil {
		return c.step(op)
	}
	start := time.Now()
	filteredBefore := c.filtered
	forensicBefore := c.opts.Spans.StageNs(span.StageForensics)
	w := c.step(op)
	d := time.Since(start)
	if c.met != nil {
		c.met.observe(op, w, d)
	}
	if c.opts.Spans != nil {
		c.spanStep(d, filteredBefore, forensicBefore)
	}
	return w
}

// SkipFiltered implements Checker: it consumes op as a filter hit
// decided by the pipeline's sharded prefilter, replaying filterAero's
// hit path — filter accounting and index advance; the decision cache
// holds pointers whose values a repeat hit leaves untouched, so no
// store is needed.
func (c *aeroChecker) SkipFiltered(op trace.Op) bool {
	if c.done || c.opts.NoFilter {
		return false
	}
	if c.met == nil && c.opts.Spans == nil {
		c.filterHit()
		c.idx++
		return true
	}
	start := time.Now()
	filteredBefore := c.filtered
	forensicBefore := c.opts.Spans.StageNs(span.StageForensics)
	c.filterHit()
	c.idx++
	d := time.Since(start)
	if c.met != nil {
		c.met.observe(op, nil, d)
	}
	if c.opts.Spans != nil {
		c.spanStep(d, filteredBefore, forensicBefore)
	}
	return true
}

// step is the uninstrumented Step body.
func (c *aeroChecker) step(op trace.Op) *Warning {
	if c.done {
		return nil
	}
	var w *Warning
	if op.Kind == trace.Fork || op.Kind == trace.Join {
		for _, sub := range (trace.Trace{op}).Desugar() {
			if ww := c.step1(sub); ww != nil && w == nil {
				w = ww
			}
		}
	} else {
		w = c.step1(op)
	}
	c.idx++
	return w
}

func (c *aeroChecker) step1(op trace.Op) *Warning {
	t := op.Thread
	inside := c.depth(t) > 0
	switch op.Kind {
	case trace.Begin:
		stack := c.stack(t)
		ignored := c.opts.Ignore[op.Label]
		if !ignored {
			c.addDepth(t, 1)
		}
		if inside || ignored {
			// Nested blocks tick within the running transaction; exempted
			// blocks push a marker frame but never start one.
			var start uint64
			if inside {
				start = c.obj(t).vc.Tick(t)
			}
			c.setStack(t, append(stack, frame{op.Label, start, ignored}))
			return nil
		}
		meta := &TxnMeta{Thread: t, Label: op.Label, Start: c.idx, End: -1}
		o := c.newObj(t, meta)
		o.active = true
		c.setStack(t, append(stack, frame{op.Label, o.begin, false}))
		return nil

	case trace.End:
		stack := c.stack(t)
		n := len(stack) - 1
		popped := stack[n]
		c.setStack(t, stack[:n])
		if !popped.ignored {
			c.addDepth(t, -1)
		}
		if inside {
			o := c.obj(t)
			o.vc.Tick(t)
			if !popped.ignored && checkedDepth(stack[:n]) == 0 {
				o.active = false
				if o.ups == 0 {
					// The clock is final — no growable source can ever push
					// into it, so pending subscriptions can never fire.
					// Dropping them unlinks the object for the GC and
					// releases the subscribers it was keeping growable.
					c.freeze(o)
				}
			}
		}
		return nil
	}

	if !c.opts.NoFilter && c.filterAero(op) {
		c.filterHit()
		return nil
	}
	if inside {
		return c.insideOp(op)
	}
	return c.outsideOp(op)
}

// newObj starts a fresh transaction object for t, ordered after the
// thread's previous object by program order.
func (c *aeroChecker) newObj(t trace.Tid, meta *TxnMeta) *aeroObj {
	prev := c.obj(t)
	o := &aeroObj{owner: t, meta: meta}
	if prev != nil {
		prev.vc.CopyInto(&o.vc)
		prev.outs++
		if prev.mayGrow() {
			// Program-order chaining: predecessors that can still learn
			// new happens-before facts must forward them here.
			c.subscribe(prev, o)
		}
	}
	o.begin = o.vc.Tick(t)
	c.setObj(t, o)
	return o
}

// subscribe registers sub for src's future clock growth.
func (c *aeroChecker) subscribe(src, sub *aeroObj) {
	if src == sub {
		return
	}
	if src.subSet != nil {
		if _, dup := src.subSet[sub]; dup {
			return
		}
		src.subSet[sub] = struct{}{}
	} else {
		for _, r := range src.subs {
			if r == sub {
				return
			}
		}
		if len(src.subs) >= 32 {
			src.subSet = make(map[*aeroObj]struct{}, len(src.subs)+1)
			for _, r := range src.subs {
				src.subSet[r] = struct{}{}
			}
			src.subSet[sub] = struct{}{}
		}
	}
	src.subs = append(src.subs, sub)
	sub.ups++
	if c.met != nil {
		c.met.aeroSubsPeak.SetMax(int64(len(src.subs)))
	}
}

// freeze finalizes an object whose clock can no longer change (inactive
// with no growable sources left): its pending subscriptions can never
// fire, so the subscriber list is dropped, and each subscriber loses one
// growable source — cascading, since that may finalize it in turn. This
// is reference-counting GC on the subscription DAG, the clock-engine
// analog of the graph engines' Section 4.1 collection, and it bounds
// subscriber-list growth on join-dominated traces where the old sticky
// "chained" bit kept the whole chain's lists alive.
func (c *aeroChecker) freeze(o *aeroObj) {
	work := append(c.fwork[:0], o)
	for len(work) > 0 {
		f := work[len(work)-1]
		work = work[:len(work)-1]
		subs := f.subs
		f.subs, f.subSet = nil, nil
		for _, r := range subs {
			if r.ups--; r.ups == 0 && !r.active {
				work = append(work, r)
			}
		}
	}
	c.fwork = work[:0]
}

// joinFrom orders the stored object s before the running object d:
// d's clock absorbs s's, and if s may still grow, d subscribes to the
// growth. A violation fires when s has transitively observed a tick of
// d's own transaction — the cycle d → … → s → d.
func (c *aeroChecker) joinFrom(d, s *aeroObj, op trace.Op) *Warning {
	if s == nil || s == d {
		return nil
	}
	if s.vc.Get(d.owner) >= d.begin {
		return c.violation(op, s)
	}
	s.outs++
	grew := d.vc.Join(&s.vc)
	if s.mayGrow() {
		c.subscribe(s, d)
	}
	if grew {
		return c.propagate(d, op)
	}
	return nil
}

// propagate pushes o's freshly grown clock through its subscriber DAG,
// recursing only where a clock actually changed, and firing when the
// growth proves a subscriber's transaction was observed by something
// ordered before it (the cascade completes the same cycle the ordering
// inserted at this event would close in the graph engines).
func (c *aeroChecker) propagate(o *aeroObj, op trace.Op) *Warning {
	work := append(c.work[:0], o)
	for len(work) > 0 {
		src := work[len(work)-1]
		work = work[:len(work)-1]
		for _, r := range src.subs {
			if src.vc.Get(r.owner) >= r.begin {
				c.work = work[:0]
				return c.violation(op, src)
			}
			if r.vc.Join(&src.vc) {
				work = append(work, r)
			}
		}
	}
	c.work = work[:0]
	return nil
}

// insideOp handles one operation of a running transaction.
func (c *aeroChecker) insideOp(op trace.Op) *Warning {
	t := op.Thread
	o := c.obj(t)
	o.vc.Tick(t)
	switch op.Kind {
	case trace.Acquire:
		if w := c.joinFrom(o, c.l.get(op.Target), op); w != nil {
			return w
		}
	case trace.Release:
		c.l.set(op.Target, o)
	case trace.Read:
		x := op.Var()
		if w := c.joinFrom(o, c.w.get(x), op); w != nil {
			return w
		}
		c.r.set(x, t, o)
	case trace.Write:
		x := op.Var()
		if w := c.writeJoins(o, x, op); w != nil {
			return w
		}
		c.w.set(x, o)
		c.r.clear(x)
	}
	if !c.opts.NoFilter {
		c.cacheAero(op)
	}
	return nil
}

// writeJoins orders a write after the last write and every last read.
func (c *aeroChecker) writeJoins(o *aeroObj, x trace.Var, op trace.Op) *Warning {
	if w := c.joinFrom(o, c.w.get(x), op); w != nil {
		return w
	}
	for _, rs := range c.r.row(x) {
		if rs == nil {
			continue
		}
		if w := c.joinFrom(o, rs, op); w != nil {
			return w
		}
	}
	return nil
}

// outsideOp handles a non-transactional operation: its own unary
// transaction, merged into the thread's current unary container when
// that cannot forge orderings (Section 4.2's merge analog).
func (c *aeroChecker) outsideOp(op trace.Op) *Warning {
	t := op.Thread
	if op.Kind == trace.Release && !c.opts.NoMerge {
		// A release has no incoming conflict orderings, so it always
		// merges into the thread's current object ([INS2 OUTSIDE REL]).
		o := c.obj(t)
		if o == nil {
			o = c.newObj(t, &TxnMeta{Thread: t, Start: c.idx, Unary: true, End: c.idx})
		} else {
			o.vc.Tick(t)
		}
		c.l.set(op.Target, o)
		return nil
	}
	srcs := c.srcs[:0]
	switch op.Kind {
	case trace.Acquire:
		srcs = append(srcs, c.l.get(op.Target))
	case trace.Read:
		srcs = append(srcs, c.w.get(op.Var()))
	case trace.Write:
		x := op.Var()
		srcs = append(srcs, c.w.get(x))
		for _, rs := range c.r.row(x) {
			if rs != nil {
				srcs = append(srcs, rs)
			}
		}
	}
	o := c.unaryTarget(t, srcs)
	var w *Warning
	for _, s := range srcs {
		if w = c.joinFrom(o, s, op); w != nil {
			break
		}
	}
	c.srcs = srcs[:0]
	if w != nil {
		return w
	}
	switch op.Kind {
	case trace.Release:
		c.l.set(op.Target, o) // NoMerge path
	case trace.Read:
		c.r.set(op.Var(), t, o)
	case trace.Write:
		c.w.set(op.Var(), o)
		c.r.clear(op.Var())
	}
	if !c.opts.NoFilter {
		c.cacheAero(op)
	}
	return nil
}

// unaryTarget returns the object hosting one non-transactional
// operation: the thread's current unary container when extending it is
// provably equivalent, a fresh unary transaction otherwise.
func (c *aeroChecker) unaryTarget(t trace.Tid, srcs []*aeroObj) *aeroObj {
	prev := c.obj(t)
	if !c.opts.NoMerge && prev != nil && !prev.active &&
		prev.meta != nil && prev.meta.Unary && prev.outs == 0 {
		reuse := true
		for _, s := range srcs {
			if s == nil || s == prev {
				continue
			}
			// Extending prev with an op ordered after s asserts s ≺ prev
			// retroactively. Safe only when s is frozen, prev already
			// knows everything s does, and s never observed prev itself.
			if s.mayGrow() || s.vc.Get(t) >= prev.begin || !s.vc.LessEq(&prev.vc) {
				reuse = false
				break
			}
		}
		if reuse {
			prev.vc.Tick(t)
			return prev
		}
	}
	return c.newObj(t, &TxnMeta{Thread: t, Start: c.idx, Unary: true, End: c.idx})
}

// filterAero reports whether op is a provably redundant repeat access:
// same thread, same running object, same stored conflict state as a
// previously processed access. The re-join is a no-op (subscriptions
// keep the running clock current against growable sources, checking at
// growth time), and the table stores are pointer-idempotent.
func (c *aeroChecker) filterAero(op trace.Op) bool {
	if op.Kind != trace.Read && op.Kind != trace.Write {
		return false
	}
	x := op.Var()
	if x < 0 || x >= denseVarLimit || int(x) >= len(c.fc) {
		return false
	}
	e := &c.fc[x]
	t := op.Thread
	cur := c.obj(t)
	if cur == nil {
		return false
	}
	if op.Kind == trace.Read {
		return e.rdTid == int32(t)+1 && e.rdCur == cur && e.rdW == c.w.get(x)
	}
	return e.wrTid == int32(t)+1 && e.wrCur == cur && e.wrW == c.w.get(x) &&
		e.wrVer == c.r.ver(x)
}

// cacheAero records the post-state of a processed access for filterAero.
func (c *aeroChecker) cacheAero(op trace.Op) {
	if op.Kind != trace.Read && op.Kind != trace.Write {
		return
	}
	x := op.Var()
	if x < 0 || x >= denseVarLimit {
		return
	}
	if int(x) >= len(c.fc) {
		c.fc = append(c.fc, make([]aeroFC, int(x)+1-len(c.fc))...)
	}
	e := &c.fc[x]
	t := op.Thread
	cur := c.obj(t)
	if op.Kind == trace.Read {
		e.rdTid, e.rdCur, e.rdW = int32(t)+1, cur, c.w.get(x)
		return
	}
	e.wrTid, e.wrCur, e.wrW, e.wrVer = int32(t)+1, cur, c.w.get(x), c.r.ver(x)
}

// violation reports the first observed cycle and stops the checker:
// past this point the clocks no longer describe an acyclic order.
//
// No blame is assigned, like the Basic engine. Section 4.3's blame
// rests on the cycle being *increasing* — per-operation timestamps
// monotone through every intermediate node — and the clock
// representation erases exactly those per-edge times: a clock join
// records what was observed, not at which of the holder's operations
// the knowledge arrived or left. A completer on a non-increasing cycle
// can be self-serializable, so claiming blame here would violate
// invariant 5. Blame and forensics remain graph-engine capabilities
// (EngineInfo.SupportsForensics); AeroDrome trades them for the
// linear-time verdict.
func (c *aeroChecker) violation(op trace.Op, s *aeroObj) *Warning {
	_ = s
	c.done = true
	return c.record(&Warning{OpIndex: c.idx, Op: op})
}
