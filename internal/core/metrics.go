package core

import (
	"fmt"
	"time"

	"repro/internal/obs"
	"repro/internal/trace"
)

// checkerMetrics instruments a Checker's hot path: per-operation-kind
// event counts and step latencies, plus warning/blame outcome counters.
// All instruments are cached pointers at construction, so the per-event
// cost with metrics enabled is one time.Now pair and a handful of
// atomic adds; with Options.Metrics nil the engines skip timing
// entirely.
type checkerMetrics struct {
	stepNs   [8]*obs.Histogram // per trace.Kind step latency, nanoseconds
	events   [8]*obs.Counter   // per trace.Kind operations processed
	warnings *obs.Counter      // cycles reported
	incr     *obs.Counter      // warnings with an increasing cycle
	blamed   *obs.Counter      // warnings with blame assigned (Section 4.3)
	refuted  *obs.Counter      // atomic-block labels refuted across warnings
	filtered *obs.Counter      // ops discarded by the redundant-event fast path
	// aeroSubsPeak tracks the longest subscriber list any AeroDrome
	// clock object reached — the quantity the freeze cascade bounds on
	// join-dominated traces. Stays 0 on the graph engines.
	aeroSubsPeak *obs.Gauge
}

func newCheckerMetrics(r *obs.Registry) *checkerMetrics {
	m := &checkerMetrics{
		warnings: r.Counter("velodrome_warnings_total"),
		incr:     r.Counter("velodrome_warnings_increasing_total"),
		blamed:   r.Counter("velodrome_blame_assigned_total"),
		refuted:  r.Counter("velodrome_blocks_refuted_total"),
		filtered: r.Counter("core_events_filtered_total"),
		aeroSubsPeak: r.Gauge("core_aero_subscribers_peak"),
	}
	for k := trace.Read; k <= trace.Join; k++ {
		m.stepNs[k] = r.Histogram(fmt.Sprintf("velodrome_step_ns{kind=%q}", k))
		m.events[k] = r.Counter(fmt.Sprintf("velodrome_events_total{kind=%q}", k))
	}
	return m
}

// observe records one completed Step.
func (m *checkerMetrics) observe(op trace.Op, w *Warning, d time.Duration) {
	if k := int(op.Kind); k < len(m.stepNs) {
		m.stepNs[k].Observe(int64(d))
		m.events[k].Inc()
	}
	if w == nil {
		return
	}
	m.warnings.Inc()
	if w.Increasing {
		m.incr.Inc()
	}
	if w.Blamed != nil {
		m.blamed.Inc()
	}
	m.refuted.Add(int64(len(w.Refuted)))
}
