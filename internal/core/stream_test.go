package core

import (
	"bytes"
	"errors"
	"strings"
	"testing"

	"repro/internal/trace"
)

// TestCheckStreamMatchesCheckTrace feeds the same trace through the
// streaming and the in-memory entry points and requires identical
// verdicts and warning counts, for both engines and both wire formats.
func TestCheckStreamMatchesCheckTrace(t *testing.T) {
	traces := map[string]trace.Trace{
		"nonserializable": {
			trace.Beg(1, "inc"),
			trace.Rd(1, 0),
			trace.Wr(2, 0),
			trace.Wr(1, 0),
			trace.Fin(1),
		},
		"serializable": {
			trace.Beg(1, "inc"),
			trace.Acq(1, 0),
			trace.Rd(1, 0),
			trace.Wr(1, 0),
			trace.Rel(1, 0),
			trace.Fin(1),
			trace.Acq(2, 0),
			trace.Rd(2, 0),
			trace.Rel(2, 0),
		},
	}
	for name, tr := range traces {
		for _, eng := range []Engine{Optimized, Basic, Aero} {
			opts := Options{Engine: eng}
			want := CheckTrace(tr, opts)

			var text, bin bytes.Buffer
			if err := trace.Marshal(&text, tr); err != nil {
				t.Fatal(err)
			}
			if err := trace.MarshalBinary(&bin, tr); err != nil {
				t.Fatal(err)
			}
			for enc, data := range map[string][]byte{"text": text.Bytes(), "binary": bin.Bytes()} {
				got, n, err := CheckStream(trace.NewDecoder(bytes.NewReader(data)), opts)
				if err != nil {
					t.Fatalf("%s/%v/%s: %v", name, eng, enc, err)
				}
				if n != len(tr) {
					t.Errorf("%s/%v/%s: consumed %d ops, want %d", name, eng, enc, n, len(tr))
				}
				if got.Serializable != want.Serializable || len(got.Warnings) != len(want.Warnings) {
					t.Errorf("%s/%v/%s: stream verdict (%v, %d warnings) != in-memory (%v, %d warnings)",
						name, eng, enc, got.Serializable, len(got.Warnings), want.Serializable, len(want.Warnings))
				}
			}
		}
	}
}

// TestCheckStreamEmpty checks the zero-op regression: a stream that
// dies before the first operation (crashed producer, empty pipe) must
// be a distinct malformed-input outcome, not a clean serializable
// verdict. The result must be nil — the old contract returned a
// vacuous Serializable=true result alongside the error, and any caller
// that checked the result before the error read a clean verdict off a
// malformed input.
func TestCheckStreamEmpty(t *testing.T) {
	for name, in := range map[string]string{
		"empty":        "",
		"comment-only": "# a producer that wrote its trailer and nothing else\n",
		"blank-lines":  "\n\n\n",
	} {
		res, n, err := CheckStream(trace.NewDecoder(strings.NewReader(in)), Options{})
		if !errors.Is(err, ErrEmptyStream) {
			t.Errorf("%s: err = %v, want ErrEmptyStream", name, err)
		}
		if n != 0 {
			t.Errorf("%s: consumed %d ops, want 0", name, n)
		}
		if res != nil {
			t.Errorf("%s: result = %+v, want nil (no ops were checked)", name, res)
		}
	}
}

// TestCheckStreamDecodeError checks that a malformed tail still returns
// the partial result alongside the error.
func TestCheckStreamDecodeError(t *testing.T) {
	in := "rd(1,x0)\nwr(2,x0)\nnot an op\n"
	res, n, err := CheckStream(trace.NewDecoder(strings.NewReader(in)), Options{})
	if err == nil {
		t.Fatal("want decode error")
	}
	if n != 2 {
		t.Fatalf("consumed %d ops before error, want 2", n)
	}
	if res == nil || !res.Serializable {
		t.Fatalf("partial result = %+v", res)
	}
}
