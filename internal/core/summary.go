package core

import (
	"sort"

	"repro/internal/trace"
)

// MethodSummary aggregates the warnings blamed on one atomic method.
type MethodSummary struct {
	Method     trace.Label
	Count      int      // warnings blamed on the method
	First      *Warning // earliest warning (by operation index)
	Increasing int      // how many had increasing cycles
}

// Summarize groups warnings by blamed method, dropping duplicates the way
// the paper counts "distinct warnings": one row per method, ordered by
// first occurrence. Warnings without blame are grouped under "".
func Summarize(warnings []*Warning) []MethodSummary {
	byMethod := map[trace.Label]*MethodSummary{}
	var order []trace.Label
	for _, w := range warnings {
		m := w.Method()
		s := byMethod[m]
		if s == nil {
			s = &MethodSummary{Method: m, First: w}
			byMethod[m] = s
			order = append(order, m)
		}
		s.Count++
		if w.Increasing {
			s.Increasing++
		}
		if w.OpIndex < s.First.OpIndex {
			s.First = w
		}
	}
	sort.SliceStable(order, func(i, j int) bool {
		return byMethod[order[i]].First.OpIndex < byMethod[order[j]].First.OpIndex
	})
	out := make([]MethodSummary, 0, len(order))
	for _, m := range order {
		out = append(out, *byMethod[m])
	}
	return out
}

// WarningJSON is a machine-readable view of a Warning (stable field names
// for tool output).
type WarningJSON struct {
	OpIndex    int        `json:"opIndex"`
	Op         string     `json:"op"`
	Method     string     `json:"method,omitempty"`
	Increasing bool       `json:"increasing"`
	Refuted    []string   `json:"refuted,omitempty"`
	Cycle      []EdgeJSON `json:"cycle"`
}

// EdgeJSON is one happens-before edge of the cycle.
type EdgeJSON struct {
	From string `json:"from"`
	To   string `json:"to"`
	Op   string `json:"op"`
}

// JSON returns the machine-readable view.
func (w *Warning) JSON() WarningJSON {
	out := WarningJSON{
		OpIndex:    w.OpIndex,
		Op:         w.Op.String(),
		Method:     string(w.Method()),
		Increasing: w.Increasing,
	}
	for _, l := range w.Refuted {
		out.Refuted = append(out.Refuted, string(l))
	}
	for _, e := range w.Cycle.Edges {
		from, _ := e.FromData.(*TxnMeta)
		to, _ := e.ToData.(*TxnMeta)
		out.Cycle = append(out.Cycle, EdgeJSON{
			From: from.String(), To: to.String(), Op: e.Op.String(),
		})
	}
	return out
}
