package core_test

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/trace"
)

// ExampleCheckTrace checks the paper's first example: a read-modify-write
// interleaved with another thread's write.
func ExampleCheckTrace() {
	x := trace.Var(0)
	tr := trace.Trace{
		trace.Beg(1, "increment"),
		trace.Rd(1, x),
		trace.Wr(2, x),
		trace.Wr(1, x),
		trace.Fin(1),
	}
	res := core.CheckTrace(tr, core.Options{})
	fmt.Println("serializable:", res.Serializable)
	fmt.Println("blamed:", res.Warnings[0].Method())
	// Output:
	// serializable: false
	// blamed: increment
}

// ExampleNew drives the online checker one operation at a time, the way
// an instrumentation framework feeds it.
func ExampleNew() {
	x := trace.Var(0)
	c := core.New(core.Options{})
	for _, op := range []trace.Op{
		trace.Beg(1, "get"),
		trace.Rd(1, x),
		trace.Fin(1),
		trace.Wr(2, x),
	} {
		if w := c.Step(op); w != nil {
			fmt.Println("violation at", w.Op)
		}
	}
	fmt.Println("warnings:", len(c.Warnings()))
	fmt.Println("nodes allocated:", c.Stats().Allocated)
	// Output:
	// warnings: 0
	// nodes allocated: 1
}

// ExampleCheckTrace_nested shows blame assignment with nested atomic
// blocks (Section 4.3): blocks containing both the root and target
// operations are refuted; the inner block opened in between is spared.
func ExampleCheckTrace_nested() {
	x := trace.Var(0)
	tr := trace.Trace{
		trace.Beg(1, "p"),
		trace.Beg(1, "q"),
		trace.Rd(1, x),
		trace.Wr(2, x),
		trace.Beg(1, "r"),
		trace.Wr(1, x),
		trace.Fin(1), trace.Fin(1), trace.Fin(1),
	}
	res := core.CheckTrace(tr, core.Options{})
	fmt.Println("refuted:", res.Warnings[0].Refuted)
	// Output:
	// refuted: [p q]
}
