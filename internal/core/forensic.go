package core

// Forensics support shared by both engines: provenance construction for
// happens-before edges and the assembly of a warning's provenance report
// from the detected cycle plus the flight recorder. Everything here runs
// only under Options.Forensics; the rec == nil path never reaches it.

import (
	"sort"

	"repro/internal/forensic"
	"repro/internal/graph"
	"repro/internal/trace"
)

// poProv is the provenance of a program-order edge (thread-successor
// ordering) inserted by the operation being processed.
func (c *common) poProv() graph.EdgeProv {
	return graph.EdgeProv{HeadIdx: int64(c.idx), Program: true}
}

// tailProv is the provenance of a conflict edge inserted by the operation
// being processed, drawn from the stored predecessor step whose recorded
// access is tail (no tail access when the recorder has none, e.g. a
// predecessor stored before forensics could observe it).
func (c *common) tailProv(tail forensic.Access) graph.EdgeProv {
	p := graph.EdgeProv{HeadIdx: int64(c.idx)}
	if tail.OK {
		p.TailIdx, p.TailOp, p.HasTail = tail.Idx, tail.Op, true
	}
	return p
}

// noteOp feeds the flight recorder; access mirrors a W/R/U table store
// into the last-access provenance tables. Both are no-ops with
// forensics off.
func (c *common) noteOp(op trace.Op) {
	if c.rec != nil {
		c.rec.Note(int64(c.idx), op)
	}
}

func (c *common) access(op trace.Op) {
	if c.rec != nil {
		c.rec.Access(int64(c.idx), op)
	}
}

// buildReport assembles the provenance report for w at warning time: the
// cycle's transactions and edges (with the access pairs riding on
// graph.EdgeProv) plus the involved threads' flight-recorder windows.
func (c *common) buildReport(w *Warning) *forensic.Report {
	rep := &forensic.Report{
		OpIndex:    int64(w.OpIndex),
		Op:         w.Op.String(),
		Increasing: w.Increasing,
	}
	if w.Blamed != nil {
		rep.Blamed = w.Blamed.String()
	}
	for _, l := range w.Refuted {
		rep.Refuted = append(rep.Refuted, string(l))
	}
	idxOf := map[graph.NodeID]int{}
	threads := map[trace.Tid]bool{}
	addTxn := func(id graph.NodeID, data any) int {
		if i, ok := idxOf[id]; ok {
			return i
		}
		t := forensic.Txn{Start: -1, End: -1}
		if meta, ok := data.(*TxnMeta); ok && meta != nil {
			t.Name = meta.String()
			t.Thread = int32(meta.Thread)
			t.Label = string(meta.Label)
			t.Start = int64(meta.Start)
			t.End = int64(meta.End)
			t.Unary = meta.Unary
			t.Blamed = meta == w.Blamed
			threads[meta.Thread] = true
		} else {
			t.Name = "?"
			t.Unknown = true
		}
		i := len(rep.Txns)
		idxOf[id] = i
		rep.Txns = append(rep.Txns, t)
		return i
	}
	for i, e := range w.Cycle.Edges {
		from := addTxn(e.From, e.FromData)
		to := addTxn(e.To, e.ToData)
		kind, conflict := "conflict", forensic.ConflictTarget(e.Op)
		if e.Prov.Program {
			kind, conflict = "program-order", ""
		}
		re := forensic.Edge{
			From: from, To: to, Kind: kind, Conflict: conflict,
			Head: forensic.AccessJSON{
				Index: e.Prov.HeadIdx, Op: e.Op.String(), Thread: int32(e.Op.Thread),
			},
			TailTime: e.TailTime,
			HeadTime: e.HeadTime,
			Closing:  i == len(w.Cycle.Edges)-1,
		}
		if e.Prov.HasTail {
			re.Tail = &forensic.AccessJSON{
				Index:  e.Prov.TailIdx,
				Op:     e.Prov.TailOp.String(),
				Thread: int32(e.Prov.TailOp.Thread),
			}
		}
		threads[e.Op.Thread] = true
		rep.Edges = append(rep.Edges, re)
	}
	tids := make([]trace.Tid, 0, len(threads))
	for t := range threads {
		tids = append(tids, t)
	}
	sort.Slice(tids, func(i, j int) bool { return tids[i] < tids[j] })
	for _, t := range tids {
		if ops := c.rec.ThreadWindow(t); len(ops) > 0 {
			rep.Threads = append(rep.Threads, forensic.ThreadWindow{Thread: int32(t), Ops: ops})
		}
	}
	return rep
}
