// Package core implements the Velodrome dynamic atomicity analysis
// (Flanagan, Freund, Yi — PLDI 2008): a sound and complete online checker
// for conflict-serializability of observed traces.
//
// Two engines are provided. The Basic engine is the initial analysis of
// Figure 2 (one graph node per transaction, non-transactional operations
// wrapped in unary transactions via [INS OUTSIDE]). The Optimized engine is
// the refined analysis of Figure 4: steps with per-operation timestamps,
// nested atomic blocks, reference-counting garbage collection, node
// merging for non-transactional operations, and blame assignment via
// increasing cycles. Both engines report a warning if and only if the
// observed trace is not conflict-serializable.
package core

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/forensic"
	"repro/internal/graph"
	"repro/internal/obs"
	"repro/internal/span"
	"repro/internal/trace"
)

// Engine selects the analysis variant.
type Engine int

// Engine variants.
const (
	// Optimized is the production analysis of Figure 4.
	Optimized Engine = iota
	// Basic is the initial analysis of Figure 2, kept for differential
	// testing and for the "Without Merge" columns of Table 1.
	Basic
	// Aero is the AeroDrome engine (Mathur & Viswanathan): single-pass
	// vector-clock checking with no happens-before graph. Linear-regime
	// fast, but inherently first-violation: it stops at the first
	// warning regardless of FirstOnly, and supports no forensics (see
	// EngineInfo's capability flags).
	Aero
)

// Options configure a Checker. The zero value is the paper's production
// configuration: the optimized engine with merging and garbage collection.
type Options struct {
	Engine Engine
	// NoMerge disables the merge optimization of Section 4.2; every
	// non-transactional operation allocates its own unary node (the
	// "Without Merge" configuration of Table 1).
	NoMerge bool
	// NoGC disables reference-counting garbage collection (Section 4.1).
	// Only for differential testing; large traces exhaust the node pool.
	NoGC bool
	// NoFilter disables the FilterRedundant fast path (on by default):
	// before touching the graph, an access is compared against the stored
	// W(x)/R(x,t) steps, and one that provably cannot add a happens-before
	// edge — nor shift any later cycle or blame verdict — is discarded
	// after a few integer comparisons, skipping merge, edge insertion and
	// cycle detection (Section 5's dynamic redundant-event filtering; see
	// DESIGN.md for the redundancy argument). Disabling is only for
	// differential testing and for the filter-off benchmark columns.
	NoFilter bool
	// FirstOnly stops analysis after the first warning, leaving the
	// happens-before graph exactly as it was when the violation was found.
	FirstOnly bool
	// MaxWarnings bounds the number of recorded warnings (0 = 10000).
	MaxWarnings int
	// Forensics enables the warning-forensics layer (internal/forensic):
	// a bounded per-thread event flight recorder plus access-pair
	// provenance on every happens-before edge, so each warning carries a
	// provenance report (Warning.Forensics) naming the exact accesses
	// behind every cycle edge. Off by default: the default path stays
	// zero-overhead and verdicts are identical either way.
	Forensics bool
	// ForensicWindow is the per-thread flight-recorder depth
	// (forensic.DefaultWindow when 0). Ignored unless Forensics is set.
	ForensicWindow int
	// Metrics, when non-nil, instruments the checker on the named
	// registry: per-operation-kind step latency histograms and event
	// counters, warning/blame outcome counters, and the underlying
	// graph's allocation gauges (see internal/obs). Nil disables all
	// instrumentation, including the timing calls on the hot path.
	Metrics *obs.Registry
	// Spans, when non-nil, attributes each Step's latency to the span
	// tracer's filter/graph/forensics stage accumulators and records a
	// marker span per warning (see internal/span). The buffer must be
	// owned by the goroutine calling Step. Nil — the default — keeps the
	// hot path free of clock reads, exactly like a nil Metrics registry;
	// spans never read or write engine state, so verdicts, warning
	// positions and blame are bit-identical with tracing on or off.
	Spans *span.Buf
	// Parallel is the requested worker count for the staged checking
	// pipeline (internal/pipeline). The engines themselves ignore it —
	// checking stays strictly sequential per checker — but drivers
	// consult it to route a session through the pipeline: 0 or 1 means
	// the plain serial path, N>1 asks for N filter-shard workers.
	// Verdicts, warning positions, blame and filter counts are
	// bit-identical at every value.
	Parallel int
	// Ignore names atomic blocks exempted from checking (the paper's
	// atomicity specification, Section 5: the tool takes "a specification
	// of which methods in that program should be atomic"). An ignored
	// outermost block starts no transaction — its operations run as unary
	// transactions until a checked block opens — and an ignored nested
	// block is never refuted. Table 1's timing configuration is exactly
	// this: methods already found non-atomic are exempted, leaving "many
	// small transactions rather than a few monolithic ones".
	Ignore map[trace.Label]bool
}

// TxnMeta is the metadata attached to every transaction node, used in
// error messages and dot graphs.
type TxnMeta struct {
	Thread trace.Tid
	Label  trace.Label // outermost atomic block label; empty for unary
	Start  int         // trace index of the transaction's first operation
	// End is the trace index of the transaction's final end marker, or -1
	// while the transaction is open. It is maintained only under
	// Options.Forensics (and for single-operation unary transactions,
	// whose span is known at creation); it never affects verdicts.
	End   int
	Unary bool
}

// String renders the transaction for error messages.
func (m *TxnMeta) String() string {
	if m == nil {
		return "?"
	}
	if m.Unary {
		return fmt.Sprintf("unary@%d(t%d)", m.Start, m.Thread)
	}
	if m.Label == "" {
		return fmt.Sprintf("txn@%d(t%d)", m.Start, m.Thread)
	}
	return fmt.Sprintf("%s@%d(t%d)", m.Label, m.Start, m.Thread)
}

// Warning reports one observed conflict-serializability violation: a cycle
// in the transactional happens-before graph.
type Warning struct {
	// OpIndex is the trace index of the operation that completed the cycle.
	OpIndex int
	// Op is that operation.
	Op trace.Op
	// Cycle is the offending happens-before cycle, starting at the
	// completing transaction.
	Cycle *graph.Cycle
	// Increasing reports whether the cycle was increasing, in which case
	// the completing transaction is provably not self-serializable.
	Increasing bool
	// Blamed is the transaction blamed for the violation (nil when blame
	// could not be assigned to a single transaction, Section 4.3).
	Blamed *TxnMeta
	// Refuted lists the labels of the atomic blocks of the blamed
	// transaction that contain both the root and target operations of the
	// cycle, outermost first. Only those blocks are non-serializable;
	// inner blocks that exclude the root operation are not refuted.
	Refuted []trace.Label

	// report is the provenance report assembled at warning time under
	// Options.Forensics (nil otherwise). It must be built eagerly: the
	// flight-recorder windows advance as checking continues.
	report *forensic.Report
}

// Forensics returns the warning's provenance report, or nil when the
// checker ran without Options.Forensics.
func (w *Warning) Forensics() *forensic.Report { return w.report }

// Method returns the outermost refuted atomic block label, or the blamed
// transaction's label, or "" if blame was not assigned.
func (w *Warning) Method() trace.Label {
	if len(w.Refuted) > 0 {
		return w.Refuted[0]
	}
	if w.Blamed != nil {
		return w.Blamed.Label
	}
	return ""
}

// String renders a one-line summary followed by the cycle.
func (w *Warning) String() string {
	var b strings.Builder
	if w.Blamed != nil {
		fmt.Fprintf(&b, "warning: %s is not atomic (op %d: %s)", w.Blamed, w.OpIndex, w.Op)
	} else {
		fmt.Fprintf(&b, "warning: non-serializable trace, blame unassigned (op %d: %s)", w.OpIndex, w.Op)
	}
	if w.Cycle != nil { // the Aero engine reports no cycle structure
		for _, e := range w.Cycle.Edges {
			from, _ := e.FromData.(*TxnMeta)
			to, _ := e.ToData.(*TxnMeta)
			fmt.Fprintf(&b, "\n  %s ⇒ %s via %s", from, to, e.Op)
		}
	}
	return b.String()
}

// Checker is an online conflict-serializability analysis: feed it the
// operations of a trace one at a time via Step.
type Checker interface {
	// Step processes one operation and returns a warning if the operation
	// completed a happens-before cycle (nil otherwise). The cycle-closing
	// edge is discarded so the graph stays acyclic and checking continues.
	Step(op trace.Op) *Warning
	// Warnings returns all warnings reported so far.
	Warnings() []*Warning
	// Stats returns node-allocation statistics of the underlying graph.
	Stats() graph.Stats
	// Filtered returns the number of operations discarded by the
	// redundant-event fast path (always 0 under Options.NoFilter).
	Filtered() int64
	// Graph exposes the underlying happens-before graph (for tools).
	Graph() *graph.Graph
	// SkipFiltered consumes op as a filter hit decided by an external
	// prefilter (internal/pipeline's sharded mark stage) and returns
	// true, leaving the engine in exactly the state Step would have left
	// it had its own Section 5 filter fired — or returns false without
	// touching any state, in which case the caller must fall back to
	// Step. It returns false whenever the engine cannot prove the skip
	// is state-identical (checking already done, filtering disabled).
	// Callers must only offer operations the prefilter proved redundant;
	// see internal/pipeline for the marking contract.
	SkipFiltered(op trace.Op) bool
}

// New returns a Checker configured by opts.
func New(opts Options) Checker {
	if opts.MaxWarnings == 0 {
		opts.MaxWarnings = 10000
	}
	g := graph.New()
	g.SetGC(!opts.NoGC)
	g.SetMemo(!opts.NoFilter)
	var met *checkerMetrics
	if opts.Metrics != nil {
		g.SetMetrics(opts.Metrics)
		met = newCheckerMetrics(opts.Metrics)
	}
	var rec *forensic.Recorder
	if opts.Forensics && InfoFor(opts.Engine).SupportsForensics {
		rec = forensic.NewRecorder(opts.ForensicWindow)
	}
	switch opts.Engine {
	case Basic:
		return &basicChecker{common: common{g: g, opts: opts, met: met, rec: rec}}
	case Aero:
		return &aeroChecker{common: common{g: g, opts: opts, met: met, rec: rec}}
	}
	return &optChecker{common: common{g: g, opts: opts, met: met, rec: rec}}
}

// Result is the outcome of checking a complete trace.
type Result struct {
	Serializable bool
	Warnings     []*Warning
	Stats        graph.Stats
	// Filtered counts operations discarded by the redundant-event fast
	// path (Section 5); Stats.FilteredEdges separately counts edge
	// re-insertions served by the graph's last-edge memo.
	Filtered int64
}

// CheckTrace runs a fresh Checker over the whole trace.
func CheckTrace(tr trace.Trace, opts Options) *Result {
	c := New(opts)
	for _, op := range tr {
		c.Step(op)
	}
	return &Result{
		Serializable: len(c.Warnings()) == 0,
		Warnings:     c.Warnings(),
		Stats:        c.Stats(),
		Filtered:     c.Filtered(),
	}
}

// common holds state shared by both engines.
type common struct {
	g        *graph.Graph
	opts     Options
	met      *checkerMetrics    // nil when Options.Metrics is nil
	rec      *forensic.Recorder // nil when Options.Forensics is off
	warns    []*Warning
	idx      int // index of the operation being processed
	filtered int64
	done     bool
}

// Warnings implements Checker.
func (c *common) Warnings() []*Warning { return c.warns }

// Stats implements Checker.
func (c *common) Stats() graph.Stats { return c.g.Stats() }

// Filtered implements Checker.
func (c *common) Filtered() int64 { return c.filtered }

// filterHit counts one operation discarded by the redundant-event fast
// path.
func (c *common) filterHit() {
	c.filtered++
	if c.met != nil {
		c.met.filtered.Inc()
	}
}

// Graph implements Checker.
func (c *common) Graph() *graph.Graph { return c.g }

// spanStep attributes one completed Step to the filter or graph stage,
// excluding any nanoseconds record separately booked to forensics
// assembly during the same call.
func (c *common) spanStep(d time.Duration, filteredBefore, forensicNsBefore int64) {
	b := c.opts.Spans
	ns := int64(d) - (b.StageNs(span.StageForensics) - forensicNsBefore)
	if ns < 0 {
		ns = 0
	}
	if c.filtered != filteredBefore {
		b.AddStage(span.StageFilter, ns)
	} else {
		b.AddStage(span.StageGraph, ns)
	}
}

func (c *common) record(w *Warning) *Warning {
	if c.rec != nil {
		// Eager: the flight-recorder windows are only valid right now.
		if b := c.opts.Spans; b != nil {
			t0 := time.Now()
			w.report = c.buildReport(w)
			b.AddStage(span.StageForensics, int64(time.Since(t0)))
		} else {
			w.report = c.buildReport(w)
		}
	}
	if b := c.opts.Spans; b != nil {
		// A zero-length marker makes the warning findable on the
		// timeline amid the batch spans the drivers emit.
		id := b.Start("warning", 0)
		b.AttrInt(id, "op", int64(w.OpIndex))
		if w.Blamed != nil {
			b.AttrStr(id, "blamed", w.Blamed.String())
		}
		b.End(id)
	}
	if len(c.warns) < c.opts.MaxWarnings {
		c.warns = append(c.warns, w)
	}
	if c.opts.FirstOnly {
		c.done = true
	}
	return w
}
