package core

import (
	"sync"
	"testing"

	"repro/internal/obs"
	"repro/internal/trace"
)

// setAdd is the paper's non-serializable Set.add interleaving.
var setAdd = trace.Trace{
	trace.Beg(1, "Set.add"),
	trace.Rd(1, 0),
	trace.Wr(2, 0),
	trace.Wr(1, 0),
	trace.Fin(1),
}

// TestMetricsPopulated: with Options.Metrics set, both engines account
// every operation by kind, report their warnings on the registry, and
// mirror the graph statistics onto gauges that agree with Stats().
func TestMetricsPopulated(t *testing.T) {
	for _, eng := range []Engine{Optimized, Basic} {
		reg := obs.NewRegistry()
		c := New(Options{Engine: eng, Metrics: reg})
		for _, op := range setAdd {
			c.Step(op)
		}
		snap := reg.Snapshot()
		if got := snap.Counters[`velodrome_events_total{kind="rd"}`]; got != 1 {
			t.Errorf("engine %v: rd events = %d, want 1", eng, got)
		}
		if got := snap.Counters[`velodrome_events_total{kind="wr"}`]; got != 2 {
			t.Errorf("engine %v: wr events = %d, want 2", eng, got)
		}
		if got := snap.Counters["velodrome_warnings_total"]; got != 1 {
			t.Errorf("engine %v: warnings = %d, want 1", eng, got)
		}
		h := snap.Histograms[`velodrome_step_ns{kind="wr"}`]
		if h.Count != 2 {
			t.Errorf("engine %v: wr latency samples = %d, want 2", eng, h.Count)
		}
		st := c.Stats()
		if got := snap.Counters["graph_nodes_allocated_total"]; got != int64(st.Allocated) {
			t.Errorf("engine %v: allocated gauge %d, stats %d", eng, got, st.Allocated)
		}
		if got := snap.Gauges["graph_nodes_alive"]; got != int64(st.Alive) {
			t.Errorf("engine %v: alive gauge %d, stats %d", eng, got, st.Alive)
		}
		if got := snap.Gauges["graph_nodes_max_alive"]; got != int64(st.MaxAlive) {
			t.Errorf("engine %v: max-alive gauge %d, stats %d", eng, got, st.MaxAlive)
		}
		if snap.Counters["graph_cycle_checks_total"] == 0 {
			t.Errorf("engine %v: no cycle checks recorded", eng)
		}
		if got := snap.Counters["graph_cycles_detected_total"]; got != 1 {
			t.Errorf("engine %v: cycles detected = %d, want 1", eng, got)
		}
	}
}

// TestMetricsBlameCounters: the optimized engine credits increasing
// cycles, blame assignment and refuted blocks.
func TestMetricsBlameCounters(t *testing.T) {
	reg := obs.NewRegistry()
	c := New(Options{Metrics: reg})
	for _, op := range setAdd {
		c.Step(op)
	}
	snap := reg.Snapshot()
	for _, name := range []string{
		"velodrome_warnings_increasing_total",
		"velodrome_blame_assigned_total",
		"velodrome_blocks_refuted_total",
	} {
		if snap.Counters[name] != 1 {
			t.Errorf("%s = %d, want 1", name, snap.Counters[name])
		}
	}
}

// TestMetricsOffByDefault: a zero-value Options checker registers
// nothing and still works (the engines skip all timing).
func TestMetricsOffByDefault(t *testing.T) {
	res := CheckTrace(setAdd, Options{})
	if res.Serializable {
		t.Fatal("setAdd must be non-serializable")
	}
}

// TestMetricsConcurrentScrape snapshots the registry from another
// goroutine while the checker is stepping — the live-/metrics-endpoint
// scenario — and is meant to run under -race (tier-1 recipe).
func TestMetricsConcurrentScrape(t *testing.T) {
	reg := obs.NewRegistry()
	c := New(Options{Metrics: reg})
	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-done:
				return
			default:
				snap := reg.Snapshot()
				snap.Prometheus()
			}
		}
	}()
	for i := 0; i < 2000; i++ {
		for _, op := range setAdd {
			c.Step(op)
		}
	}
	close(done)
	wg.Wait()
	snap := reg.Snapshot()
	if got := snap.Counters[`velodrome_events_total{kind="rd"}`]; got != 2000 {
		t.Errorf("rd events = %d, want 2000", got)
	}
}

// TestGraphRecycledStat: the pool-reuse counter sees GC'd nodes come
// back from the free list.
func TestGraphRecycledStat(t *testing.T) {
	reg := obs.NewRegistry()
	c := New(Options{NoMerge: true, Metrics: reg})
	tr := trace.Trace{}
	for i := 0; i < 10; i++ {
		tr = append(tr, trace.Wr(1, 0)) // each wraps in a unary txn, GC'd at once
	}
	for _, op := range tr {
		c.Step(op)
	}
	st := c.Stats()
	if st.Recycled == 0 {
		t.Fatalf("expected free-list reuse, stats: %+v", st)
	}
	if got := reg.Snapshot().Counters["graph_nodes_recycled_total"]; got != int64(st.Recycled) {
		t.Errorf("recycled counter %d, stats %d", got, st.Recycled)
	}
}
