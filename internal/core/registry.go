package core

import "strings"

// EngineInfo describes one registered engine: its canonical name (the
// value accepted by every -engine flag and by the VELOSESS/1 session
// header), aliases, and capability flags the callers branch on. All
// engine selection across the commands and the daemon goes through this
// registry, so adding an engine here surfaces it everywhere at once.
type EngineInfo struct {
	Engine  Engine
	Name    string
	Aliases []string
	// Summary is the one-line description shown in -engine usage text.
	Summary string
	// ReportsAllViolations: the engine keeps checking past the first
	// warning (the graph engines). AeroDrome stops at the first
	// violation — past it the clocks no longer describe an acyclic
	// order — so comparisons against it must use first-violation
	// semantics.
	ReportsAllViolations bool
	// SupportsForensics: Options.Forensics yields provenance reports.
	// Requires a happens-before cycle to annotate, so it is a graph
	// engine capability.
	SupportsForensics bool
	// SupportsGraph: Checker.Graph() exposes a meaningful
	// happens-before graph (dot export, graph stats).
	SupportsGraph bool
	// SupportsPrefilter: SkipFiltered consumes externally prefiltered
	// operations state-identically, so internal/pipeline may run its
	// sharded mark stage ahead of this engine. Engines without it fall
	// back to the plain serial loop inside the pipeline.
	SupportsPrefilter bool
}

// engines is the registry, in display order. Optimized first: it is the
// default everywhere.
var engines = []EngineInfo{
	{
		Engine:               Optimized,
		Name:                 "optimized",
		Aliases:              []string{"opt"},
		Summary:              "transactional happens-before graph with merging, GC and blame (Figure 4)",
		ReportsAllViolations: true,
		SupportsForensics:    true,
		SupportsGraph:        true,
		SupportsPrefilter:    true,
	},
	{
		Engine:               Basic,
		Name:                 "basic",
		Aliases:              nil,
		Summary:              "the initial analysis of Figure 2 (differential testing; no blame)",
		ReportsAllViolations: true,
		SupportsForensics:    true,
		SupportsGraph:        true,
		SupportsPrefilter:    true,
	},
	{
		Engine:               Aero,
		Name:                 "aerodrome",
		Aliases:              []string{"aero"},
		Summary:              "linear-time vector-clock engine; first violation only, no graph",
		ReportsAllViolations: false,
		SupportsForensics:    false,
		SupportsGraph:        false,
		SupportsPrefilter:    true,
	},
}

// Engines returns the registry in display order. The slice is shared:
// callers must not mutate it.
func Engines() []EngineInfo { return engines }

// InfoFor returns the registry entry for e (the Optimized entry for an
// unknown enum value, which cannot arise through EngineByName).
func InfoFor(e Engine) EngineInfo {
	for _, info := range engines {
		if info.Engine == e {
			return info
		}
	}
	return engines[0]
}

// EngineByName resolves a user-supplied engine name (canonical or
// alias, case-insensitive). The empty string resolves to the default
// engine, Optimized.
func EngineByName(name string) (EngineInfo, bool) {
	if name == "" {
		return engines[0], true
	}
	name = strings.ToLower(name)
	for _, info := range engines {
		if info.Name == name {
			return info, true
		}
		for _, a := range info.Aliases {
			if a == name {
				return info, true
			}
		}
	}
	return EngineInfo{}, false
}

// EngineNames returns the canonical names joined for usage and error
// strings: "optimized, basic, aerodrome".
func EngineNames() string {
	names := make([]string, len(engines))
	for i, info := range engines {
		names[i] = info.Name
	}
	return strings.Join(names, ", ")
}
