package graph

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// TestAncestorSetMatchesDFS: after random edge insertions, finishes and
// collections, the O(1) ancestor-set reachability answer must equal the
// DFS answer for every live node pair.
func TestAncestorSetMatchesDFS(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for iter := 0; iter < 200; iter++ {
		g := New()
		var steps []Step
		for i := 0; i < 8; i++ {
			steps = append(steps, g.NewNode(true, i))
		}
		for e := 0; e < 14; e++ {
			a := steps[rng.Intn(len(steps))]
			b := steps[rng.Intn(len(steps))]
			g.AddEdge(a, b, anyOp) // cycles rejected; fine
			if rng.Intn(4) == 0 {
				g.Finish(steps[rng.Intn(len(steps))])
			}
		}
		for _, a := range steps {
			for _, b := range steps {
				if g.Resolve(a) == None || g.Resolve(b) == None || a.ID() == b.ID() {
					continue
				}
				set := g.isAncestor(a.ID(), b.ID())
				dfs := g.findPath(a.ID(), b.ID()) != nil
				if set != dfs {
					t.Fatalf("iter %d: isAncestor(%v,%v)=%v but DFS=%v",
						iter, a, b, set, dfs)
				}
			}
		}
	}
}

// TestAncestorEntriesSurviveRecycling: recycled node ids must not leak
// stale ancestor facts into the new incarnation.
func TestAncestorEntriesSurviveRecycling(t *testing.T) {
	g := New()
	a := g.NewNode(true, nil)
	b := g.NewNode(true, nil)
	g.AddEdge(a, b, anyOp) // a is an ancestor of b
	aID := a.ID()
	g.Finish(a) // collected; cascade also frees b? b has in-edge... a's
	// collection removes a→b, then b (inactive? no: b still active).
	a2 := g.NewNode(true, nil)
	if a2.ID() != aID {
		t.Skip("allocator did not recycle the id")
	}
	// The new incarnation a2 must NOT appear as an ancestor of b.
	if g.isAncestor(a2.ID(), b.ID()) {
		t.Fatal("stale ancestor entry leaked into recycled incarnation")
	}
	// And the edge b→a2 must now be legal (no phantom cycle).
	if cyc := g.AddEdge(b, a2, anyOp); cyc != nil {
		t.Fatalf("phantom cycle from recycled id: %v", cyc)
	}
}

// TestQuickRandomGraphsStayAcyclic: whatever sequence of operations is
// thrown at the graph, a detected-and-rejected cycle is the only way a
// cycle can exist, so the maintained graph remains a DAG (checked by
// verifying every node is not its own ancestor).
func TestQuickRandomGraphsStayAcyclic(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := New()
		var steps []Step
		for i := 0; i < 6; i++ {
			steps = append(steps, g.NewNode(rng.Intn(2) == 0, nil))
		}
		for e := 0; e < 20; e++ {
			switch rng.Intn(5) {
			case 0:
				steps = append(steps, g.NewNode(true, nil))
			case 1:
				g.Finish(steps[rng.Intn(len(steps))])
			case 2:
				s := steps[rng.Intn(len(steps))]
				if n := g.Tick(s); n != None {
					steps[rng.Intn(len(steps))] = n
				}
			default:
				g.AddEdge(steps[rng.Intn(len(steps))], steps[rng.Intn(len(steps))], anyOp)
			}
		}
		for _, s := range steps {
			if g.Resolve(s) == None {
				continue
			}
			if g.isAncestor(s.ID(), s.ID()) {
				return false
			}
			if g.findPath(s.ID(), s.ID()) != nil && s.ID() != s.ID() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// TestMergeUsesAncestorKnowledge: merge must reuse a finished candidate
// that transitively dominates the others, found via the ancestor sets.
func TestMergeUsesAncestorKnowledge(t *testing.T) {
	g := New()
	a := g.NewNode(true, nil)
	b := g.NewNode(true, nil)
	c := g.NewNode(true, nil)
	g.AddEdge(a, b, anyOp)
	g.AddEdge(b, c, anyOp)
	g.Finish(c) // finished but pinned by incoming edge
	before := g.Stats().Allocated
	s := g.Merge([]Step{a, c}, anyOp, nil) // a ⇒* c transitively
	if s.ID() != c.ID() {
		t.Fatalf("merge returned %v, want c's node", s)
	}
	if g.Stats().Allocated != before {
		t.Fatal("merge allocated despite a dominating candidate")
	}
}

// TestEdgeCountBoundedByNodePairs: re-adding edges between the same node
// pair must never grow H (the |Node|² bound of Section 4.3).
func TestEdgeCountBoundedByNodePairs(t *testing.T) {
	g := New()
	a := g.NewNode(true, nil)
	b := g.NewNode(true, nil)
	for i := 0; i < 50; i++ {
		a2, b2 := g.Tick(a), g.Tick(b)
		g.AddEdge(a2, b2, anyOp)
		a, b = a2, b2
	}
	if got := g.Stats().Edges; got != 1 {
		t.Fatalf("edges = %d, want 1 (one edge per node pair)", got)
	}
}

// TestMergeScratchNotRetained: Merge's candidate buffer is reused; two
// back-to-back merges must not corrupt each other.
func TestMergeScratchNotRetained(t *testing.T) {
	g := New()
	a := g.NewNode(true, nil)
	b := g.NewNode(true, nil)
	s1 := g.Merge([]Step{a, b}, anyOp, nil)
	s2 := g.Merge([]Step{a, b, s1}, anyOp, nil)
	if s2 == None {
		t.Fatal("second merge lost its candidates")
	}
	if !g.HappensBeforeOrSame(a, s2) || !g.HappensBeforeOrSame(b, s2) {
		t.Fatal("second merge result must dominate the predecessors")
	}
}

// TestInvariantsUnderRandomUse drives the graph through random operation
// sequences and checks the full invariant battery after every step.
func TestInvariantsUnderRandomUse(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for iter := 0; iter < 60; iter++ {
		g := New()
		var steps []Step
		for i := 0; i < 5; i++ {
			steps = append(steps, g.NewNode(true, nil))
		}
		for e := 0; e < 30; e++ {
			switch rng.Intn(6) {
			case 0:
				// Inactive nodes are only ever created by Merge (which
				// immediately gives them incoming edges), so the random
				// driver allocates active ones, like [INS2 ENTER] does.
				steps = append(steps, g.NewNode(true, nil))
			case 1:
				g.Finish(steps[rng.Intn(len(steps))])
			case 2:
				if n := g.Tick(steps[rng.Intn(len(steps))]); n != None {
					steps[rng.Intn(len(steps))] = n
				}
			case 3:
				g.Merge([]Step{steps[rng.Intn(len(steps))], steps[rng.Intn(len(steps))]},
					anyOp, nil)
			default:
				g.AddEdge(steps[rng.Intn(len(steps))], steps[rng.Intn(len(steps))], anyOp)
			}
			if err := g.CheckInvariants(); err != nil {
				t.Fatalf("iter %d step %d: %v", iter, e, err)
			}
		}
	}
}
