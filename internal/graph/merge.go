package graph

import "repro/internal/trace"

// Merge implements the merge function of Figures 3 and 4: given the
// predecessor steps of a unary (non-transactional) operation, it returns a
// step that happens-after all of them, allocating a fresh node only when
// no existing node can be reused.
//
//   - If every predecessor is ⊥ (or stale), the result is ⊥: the unary
//     transaction would be collected as soon as it finished, so it is
//     never allocated at all.
//   - If some predecessor s_j happens-after (or equals) every other
//     predecessor, s_j's node is reused and no allocation occurs.
//   - Otherwise a fresh inactive node is allocated with an edge from each
//     predecessor.
//
// Deviation from the paper's literal definition (see DESIGN.md): a
// candidate s_j is reused only if its node is not a currently active
// transaction. Reusing an active node of another thread folds future
// conflicts with that transaction into filtered self-edges and can
// silently drop a real cycle; the restriction preserves soundness and is
// what the prose of Section 4.2 (which only ever reuses L(t)) implies.
//
// Candidates earlier in preds are preferred, so callers pass L(t) first.
// data is attached to a freshly allocated node, if any.
func (g *Graph) Merge(preds []Step, op trace.Op, data any) Step {
	return g.MergeP(preds, op, data, nil)
}

// MergeP is Merge carrying per-predecessor access-pair provenance:
// provs[i], when provs is non-nil, annotates the edge drawn from preds[i]
// into a freshly allocated node. The forensics-enabled engines use it so
// even the edges into merged unary transactions name their accesses.
func (g *Graph) MergeP(preds []Step, op trace.Op, data any, provs []EdgeProv) Step {
	live := g.scratch[:0] // reused buffer; callers do not retain it
	liveProv := g.provScratch[:0]
	for i, s := range preds {
		if s = g.Resolve(s); s != None {
			live = append(live, s)
			if provs != nil {
				liveProv = append(liveProv, provs[i])
			}
		}
	}
	g.scratch = live[:0]
	g.provScratch = liveProv[:0]
	if len(live) == 0 {
		return None
	}
	for _, cand := range live {
		if g.Active(cand) {
			continue
		}
		ok := true
		for _, other := range live {
			if !g.HappensBeforeOrSame(other, cand) {
				ok = false
				break
			}
		}
		if ok {
			g.stats.Merged++
			if g.met != nil {
				g.met.merged.Inc()
			}
			return cand
		}
	}
	s := g.NewNode(false, data)
	for i, p := range live {
		var prov EdgeProv
		if i < len(liveProv) {
			prov = liveProv[i]
		}
		// Edges into a brand-new node with no outgoing edges can never
		// close a cycle.
		if c := g.AddEdgeP(p, s, op, prov); c != nil {
			panic("graph: impossible cycle through fresh merge node")
		}
	}
	return s
}
