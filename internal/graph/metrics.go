package graph

import "repro/internal/obs"

// metrics mirrors the graph's allocation statistics onto an
// obs.Registry so a live run can be scraped. The plain Stats struct
// remains the single internal source of truth (and its API is
// unchanged); when a registry is attached every mutation additionally
// updates the corresponding instrument — each a single atomic add, so
// the checker's hot path stays cheap and the gauges are safe to read
// from a heartbeat or HTTP goroutine mid-run.
type metrics struct {
	allocated      *obs.Counter
	recycled       *obs.Counter
	collected      *obs.Counter
	merged         *obs.Counter
	cycleChecks    *obs.Counter
	cyclesDetected *obs.Counter
	edgesAdded     *obs.Counter
	memoHits       *obs.Counter
	alive          *obs.Gauge
	maxAlive       *obs.Gauge
	edges          *obs.Gauge
}

// SetMetrics attaches (or, with nil, detaches) a registry. The gauges
// are seeded from the current Stats so mid-run attachment starts
// consistent; the counters count from attachment onward.
func (g *Graph) SetMetrics(r *obs.Registry) {
	if r == nil {
		g.met = nil
		return
	}
	g.met = &metrics{
		allocated:      r.Counter("graph_nodes_allocated_total"),
		recycled:       r.Counter("graph_nodes_recycled_total"),
		collected:      r.Counter("graph_nodes_collected_total"),
		merged:         r.Counter("graph_merges_total"),
		cycleChecks:    r.Counter("graph_cycle_checks_total"),
		cyclesDetected: r.Counter("graph_cycles_detected_total"),
		edgesAdded:     r.Counter("graph_edges_added_total"),
		memoHits:       r.Counter("graph_edges_memo_hits_total"),
		alive:          r.Gauge("graph_nodes_alive"),
		maxAlive:       r.Gauge("graph_nodes_max_alive"),
		edges:          r.Gauge("graph_edges_alive"),
	}
	g.met.alive.Set(int64(g.stats.Alive))
	g.met.maxAlive.SetMax(int64(g.stats.MaxAlive))
	g.met.edges.Set(int64(g.stats.Edges))
}
