// Package graph implements the transactional happens-before graph at the
// heart of Velodrome (PLDI 2008, Sections 4 and 5).
//
// Nodes represent transactions. A Step is a 64-bit weak reference to a
// particular operation within a transaction: the top 16 bits identify a
// Node object in a recycling pool and the low 48 bits are a timestamp
// within that node, exactly as in Section 5 of the paper. When a node is
// garbage collected its timestamp watermark is remembered, so stale steps
// held in the analysis state (L, U, R, W) dereference to ⊥ even after the
// Node object has been recycled to represent a new transaction.
//
// The graph is kept acyclic at all times: an edge insertion that would
// close a cycle is reported (with the full cycle and its per-edge head and
// tail timestamps, for blame assignment) and the edge is discarded.
// Finished nodes with no incoming edges can never lie on a future cycle
// (Section 4.1) and are reference-count collected immediately, cascading
// along their outgoing edges.
package graph

import (
	"fmt"
	"strings"

	"repro/internal/trace"
)

// NodeID indexes the node pool. The zero-width of 16 bits matches the
// paper's packed representation; a run needs more than 65535 simultaneously
// live transactions only if garbage collection is disabled on a huge trace.
type NodeID uint16

// Step is a packed weak reference to (node, timestamp). The zero value is
// not a valid step; use None for ⊥.
type Step uint64

// None is the ⊥ step: the absence of a transaction.
const None Step = ^Step(0)

const (
	timeBits = 48
	timeMask = (Step(1) << timeBits) - 1
	maxNodes = 1 << 16
)

func pack(id NodeID, time uint64) Step {
	return Step(id)<<timeBits | Step(time)&timeMask
}

// ID returns the node id encoded in the step. Only meaningful for live
// steps; callers normally go through Graph.Resolve first.
func (s Step) ID() NodeID { return NodeID(s >> timeBits) }

// Time returns the timestamp encoded in the step.
func (s Step) Time() uint64 { return uint64(s & timeMask) }

// String renders the step as (n<id>, <time>), or ⊥ for None.
func (s Step) String() string {
	if s == None {
		return "⊥"
	}
	return fmt.Sprintf("(n%d,%d)", s.ID(), s.Time())
}

// An edge records that the source node happens-before the destination
// node, together with the timestamps of the operations at its tail
// (source) and head (destination). At most one edge exists per ordered
// node pair; re-insertion replaces the timestamps (the ⊕ operator of
// Section 4.3).
type edge struct {
	to       NodeID
	tailTime uint64
	headTime uint64
	op       trace.Op
	prov     EdgeProv // access-pair provenance; zero unless forensics is on
}

type node struct {
	inUse  bool
	active bool // currently some thread's executing transaction
	in     int  // number of incoming edges in H
	// birthTime and curTime delimit the live timestamp range of the
	// current incarnation; steps outside it are stale and read as ⊥.
	birthTime uint64
	curTime   uint64
	out       []edge
	anc       []ancEntry // ancestor set (Section 5), lazily compacted
	visited   uint64     // DFS generation marker (cycle extraction only)
	data      any        // client metadata, cleared on recycle
	// lastInHead is the largest head timestamp among the edges inserted
	// into this incarnation (0 if none yet). Heads of later insertions
	// are strictly larger than earlier operation timestamps within the
	// node, so lastInHead ≤ s.Time() proves no cross-thread ordering has
	// arrived since step s — the §5 redundancy precondition.
	lastInHead uint64
	// memoTo/memoIdx remember the out-edge most recently appended or
	// refreshed from this node, so tight unfiltered loops that re-insert
	// the same (src,dst) pair dedupe in O(1) before the ancestor check
	// and the edge-table scan. memoIdx < 0 means no memo.
	memoTo  NodeID
	memoIdx int32
}

// Stats reports allocation behaviour, the quantities in the last four
// columns of Table 1.
type Stats struct {
	Allocated int // total nodes ever allocated (both engines' "Allocated")
	Recycled  int // allocations served from the free list (pool reuse)
	MaxAlive  int // peak simultaneously live nodes ("Max. Alive")
	Alive     int // currently live nodes
	Collected int // nodes garbage collected
	Merged    int // merge calls satisfied without allocating
	Edges     int // edges currently in H
	// FilteredEdges counts AddEdge calls satisfied by the per-node
	// last-edge memo: the (src,dst) pair matched the previous insertion,
	// so only the timestamps were refreshed (the ⊕ of Section 4.3) with
	// no ancestor-set work.
	FilteredEdges int
}

// Graph is a transactional happens-before graph. It is not safe for
// concurrent use; the Velodrome back-end serializes the event stream.
type Graph struct {
	nodes      []node
	free       []NodeID
	gen        uint64
	noGC       bool
	noMemo     bool
	scratch     []Step     // Merge's reusable candidate buffer
	provScratch []EdgeProv // MergeP's reusable provenance buffer
	ancScratch  []ancEntry // ancestorsPlusSelf's reusable buffer
	stats      Stats
	met        *metrics // optional obs mirror, see SetMetrics
}

// New returns an empty graph with garbage collection enabled.
func New() *Graph { return &Graph{} }

// SetGC enables or disables reference-counting garbage collection.
// Disabling it is only useful for differential testing (invariant 2 of
// DESIGN.md); large traces will exhaust the 16-bit node space.
func (g *Graph) SetGC(on bool) { g.noGC = !on }

// SetMemo enables or disables the last-edge memo in AddEdge. It is part
// of the redundant-event filtering layer and is toggled together with
// the engines' FilterRedundant option, so the filter-off benchmark
// columns measure the true unfiltered baseline.
func (g *Graph) SetMemo(on bool) { g.noMemo = !on }

// Stats returns a snapshot of allocation statistics.
func (g *Graph) Stats() Stats { return g.stats }

// Alive returns the number of currently live nodes.
func (g *Graph) Alive() int { return g.stats.Alive }

// NewNode allocates a fresh transaction node and returns its initial step.
// active marks it as some thread's currently executing transaction, which
// pins it against collection until Finish.
func (g *Graph) NewNode(active bool, data any) Step {
	var id NodeID
	if n := len(g.free); n > 0 {
		id = g.free[n-1]
		g.free = g.free[:n-1]
		g.stats.Recycled++
		if g.met != nil {
			g.met.recycled.Inc()
		}
	} else {
		if len(g.nodes) >= maxNodes {
			panic("graph: node pool exhausted (65536 live nodes); enable GC")
		}
		g.nodes = append(g.nodes, node{})
		id = NodeID(len(g.nodes) - 1)
	}
	nd := &g.nodes[id]
	birth := nd.curTime + 1
	*nd = node{
		inUse:     true,
		active:    active,
		birthTime: birth,
		curTime:   birth,
		data:      data,
		memoIdx:   -1,
	}
	g.stats.Allocated++
	g.stats.Alive++
	if g.stats.Alive > g.stats.MaxAlive {
		g.stats.MaxAlive = g.stats.Alive
	}
	if g.met != nil {
		g.met.allocated.Inc()
		g.met.alive.Add(1)
		g.met.maxAlive.SetMax(int64(g.stats.MaxAlive))
	}
	return pack(id, birth)
}

// Resolve maps stale steps to None: a step whose node has been collected
// (or recycled for a newer transaction) reads as ⊥, per Section 5.
func (g *Graph) Resolve(s Step) Step {
	if s == None {
		return None
	}
	nd := &g.nodes[s.ID()]
	if !nd.inUse || s.Time() < nd.birthTime || s.Time() > nd.curTime {
		return None
	}
	return s
}

func (g *Graph) live(s Step) *node {
	if s = g.Resolve(s); s == None {
		return nil
	}
	return &g.nodes[s.ID()]
}

// Tick returns the step following s within the same transaction (the
// paper's L(t)+1), advancing the node's timestamp. Tick of ⊥ or of a stale
// step is ⊥.
func (g *Graph) Tick(s Step) Step {
	nd := g.live(s)
	if nd == nil {
		return None
	}
	nd.curTime++
	return pack(s.ID(), nd.curTime)
}

// Data returns the client metadata attached to the step's node, or nil for
// stale steps.
func (g *Graph) Data(s Step) any {
	if nd := g.live(s); nd != nil {
		return nd.data
	}
	return nil
}

// Active reports whether the step's node is a currently executing
// transaction.
func (g *Graph) Active(s Step) bool {
	nd := g.live(s)
	return nd != nil && nd.active
}

// Reusable reports whether s resolves to a live, finished node — the
// precondition under which Merge returns a candidate as-is instead of
// allocating. The engines' redundant-event fast path uses it to prove a
// merge call would be the identity on L(t).
func (g *Graph) Reusable(s Step) bool {
	nd := g.live(s)
	return nd != nil && !nd.active
}

// NoNewerIncoming reports whether s is live and no happens-before edge
// has arrived at its node with a head timestamp later than s. Edge heads
// carry the destination's operation timestamp at insertion, which only
// moves forward, so this is the §5 "no newer cross-thread access"
// check in one comparison.
func (g *Graph) NoNewerIncoming(s Step) bool {
	nd := g.live(s)
	return nd != nil && nd.lastInHead <= s.Time()
}

// LastEdgeMatches reports whether the edge most recently inserted from
// src's node already links src's exact operation (same tail timestamp)
// to dst's node. When it holds, re-inserting src ⇒ dst would be a pure
// head/op refresh of an edge already in H — it can close no cycle and
// change no tail — which is what lets the engines' fast path skip
// repeated cross-thread conflict edges entirely.
func (g *Graph) LastEdgeMatches(src, dst Step) bool {
	nd := g.live(src)
	if nd == nil || nd.memoIdx < 0 || nd.memoTo != dst.ID() {
		return false
	}
	e := &nd.out[nd.memoIdx]
	return e.to == dst.ID() && e.tailTime == src.Time()
}

// HasEdge reports whether an edge from src's exact operation (same tail
// timestamp) to dst's node is already in H, scanning src's full out-edge
// list rather than only the memo slot. It is the slow-path complement of
// LastEdgeMatches: the memo is clobbered whenever *any* later edge leaves
// src's node, but the original edge stays in H, so re-inserting src ⇒ dst
// would still be a pure head/op refresh — it can close no cycle and
// change no tail. Out-degrees stay tiny under GC (a finished node with
// edges is kept alive only by its subscribers), so the scan is cheap.
func (g *Graph) HasEdge(src, dst Step) bool {
	nd := g.live(src)
	if nd == nil || dst == None {
		return false
	}
	for i := range nd.out {
		e := &nd.out[i]
		if e.to == dst.ID() && e.tailTime == src.Time() {
			return true
		}
	}
	return false
}

// Finish marks the step's node as no longer executing ([INS2 EXIT]); if it
// has no incoming edges it is collected immediately.
func (g *Graph) Finish(s Step) {
	nd := g.live(s)
	if nd == nil {
		return
	}
	nd.active = false
	g.maybeCollect(s.ID())
}

// maybeCollect applies the GC rule of Section 4.1: a finished node with no
// incoming edges is removed, cascading along its outgoing edges.
func (g *Graph) maybeCollect(id NodeID) {
	if g.noGC {
		return
	}
	nd := &g.nodes[id]
	if !nd.inUse || nd.active || nd.in > 0 {
		return
	}
	out := nd.out
	nd.inUse = false
	nd.out = nil
	nd.data = nil
	g.stats.Alive--
	g.stats.Collected++
	g.stats.Edges -= len(out)
	if g.met != nil {
		g.met.collected.Inc()
		g.met.alive.Add(-1)
		g.met.edges.Add(int64(-len(out)))
	}
	g.free = append(g.free, id)
	for _, e := range out {
		to := &g.nodes[e.to]
		to.in--
		g.maybeCollect(e.to)
	}
}

// SetData attaches client metadata to the step's node (used by callers
// that learn the metadata only after allocation, e.g. after Merge).
func (g *Graph) SetData(s Step, v any) {
	if nd := g.live(s); nd != nil {
		nd.data = v
	}
}

// DebugDot renders the current live graph in Graphviz dot form, for
// inspecting the handful of nodes GC leaves alive at any moment.
func (g *Graph) DebugDot() string {
	var b strings.Builder
	b.WriteString("digraph hbgraph {\n  node [shape=box];\n")
	for id := range g.nodes {
		nd := &g.nodes[id]
		if !nd.inUse {
			continue
		}
		label := fmt.Sprintf("n%d", id)
		if nd.data != nil {
			label = fmt.Sprintf("%v", nd.data)
		}
		style := ""
		if nd.active {
			style = ", style=bold"
		}
		fmt.Fprintf(&b, "  n%d [label=%q%s];\n", id, label, style)
	}
	for id := range g.nodes {
		nd := &g.nodes[id]
		if !nd.inUse {
			continue
		}
		for _, e := range nd.out {
			fmt.Fprintf(&b, "  n%d -> n%d [label=%q];\n", id, e.to, e.op.String())
		}
	}
	b.WriteString("}\n")
	return b.String()
}

// CheckInvariants verifies the internal consistency of the graph and
// returns the first violation found (test hook):
//
//   - every in-degree equals the number of live edges pointing at the node;
//   - the graph is acyclic;
//   - every live ancestor entry corresponds to real edge reachability;
//   - no finished node with zero in-degree survives while GC is on.
func (g *Graph) CheckInvariants() error {
	in := make([]int, len(g.nodes))
	for id := range g.nodes {
		nd := &g.nodes[id]
		if !nd.inUse {
			continue
		}
		for _, e := range nd.out {
			if !g.nodes[e.to].inUse {
				return fmt.Errorf("graph: edge n%d→n%d points at a collected node", id, e.to)
			}
			in[e.to]++
		}
	}
	for id := range g.nodes {
		nd := &g.nodes[id]
		if !nd.inUse {
			continue
		}
		if nd.in != in[id] {
			return fmt.Errorf("graph: n%d in-degree %d, edges say %d", id, nd.in, in[id])
		}
		if !g.noGC && !nd.active && nd.in == 0 {
			return fmt.Errorf("graph: n%d finished with no incoming edges but not collected", id)
		}
		for _, e := range nd.out {
			// findPath is reflexive, so test reachability from successors.
			if e.to == NodeID(id) || g.findPath(e.to, NodeID(id)) != nil {
				return fmt.Errorf("graph: n%d lies on a cycle", id)
			}
		}
		for _, e := range nd.anc {
			if !g.liveEntry(e) {
				continue // stale entries are legal; compacted lazily
			}
			if g.findPath(e.id, NodeID(id)) == nil {
				return fmt.Errorf("graph: n%d claims ancestor n%d with no path", id, e.id)
			}
		}
		if nd.memoIdx >= 0 {
			if int(nd.memoIdx) >= len(nd.out) || nd.out[nd.memoIdx].to != nd.memoTo {
				return fmt.Errorf("graph: n%d edge memo (→n%d at %d) does not match its out-edges", id, nd.memoTo, nd.memoIdx)
			}
		}
		for _, e := range nd.out {
			if e.headTime > g.nodes[e.to].lastInHead {
				return fmt.Errorf("graph: edge n%d→n%d head %d above n%d's lastInHead %d", id, e.to, e.headTime, e.to, g.nodes[e.to].lastInHead)
			}
		}
	}
	return nil
}
