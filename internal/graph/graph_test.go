package graph

import (
	"strings"
	"testing"

	"repro/internal/trace"
)

var anyOp = trace.Rd(1, 0)

func TestStepPacking(t *testing.T) {
	s := pack(513, 0x0000ABCDEF012345)
	if s.ID() != 513 {
		t.Errorf("ID = %d, want 513", s.ID())
	}
	if s.Time() != 0x0000ABCDEF012345 {
		t.Errorf("Time = %x", s.Time())
	}
	if None.String() != "⊥" {
		t.Errorf("None renders as %q", None.String())
	}
}

func TestNewNodeAndTick(t *testing.T) {
	g := New()
	s := g.NewNode(true, "meta")
	if g.Resolve(s) != s {
		t.Fatal("fresh step should resolve to itself")
	}
	if g.Data(s) != "meta" {
		t.Fatal("data lost")
	}
	s2 := g.Tick(s)
	if s2.ID() != s.ID() || s2.Time() != s.Time()+1 {
		t.Fatalf("Tick(%v) = %v", s, s2)
	}
	if g.Resolve(s) != s {
		t.Fatal("older step of live node must stay resolvable")
	}
	if g.Tick(None) != None {
		t.Fatal("Tick(⊥) must be ⊥")
	}
}

func TestCollectOnFinish(t *testing.T) {
	g := New()
	s := g.NewNode(true, nil)
	if g.Alive() != 1 {
		t.Fatal("alive != 1")
	}
	g.Finish(s)
	if g.Alive() != 0 {
		t.Fatal("finished node with no incoming edges must be collected")
	}
	if g.Resolve(s) != None {
		t.Fatal("stale step must resolve to ⊥")
	}
}

func TestIncomingEdgePinsNode(t *testing.T) {
	g := New()
	a := g.NewNode(true, nil)
	b := g.NewNode(true, nil)
	if c := g.AddEdge(a, b, anyOp); c != nil {
		t.Fatal("unexpected cycle")
	}
	g.Finish(b)
	if g.Alive() != 2 {
		t.Fatal("b has an incoming edge and must stay alive")
	}
	g.Finish(a)
	// a collected (no incoming), cascade removes a→b, then b collected.
	if g.Alive() != 0 {
		t.Fatalf("cascade collection failed: %d alive", g.Alive())
	}
}

func TestRecycledNodeInvalidatesOldSteps(t *testing.T) {
	g := New()
	s := g.NewNode(true, nil)
	id := s.ID()
	g.Finish(s) // collected, id freed
	s2 := g.NewNode(true, nil)
	if s2.ID() != id {
		t.Skip("allocator did not recycle; packing property untestable here")
	}
	if g.Resolve(s) != None {
		t.Fatal("step from previous incarnation must read as ⊥")
	}
	if g.Resolve(s2) != s2 {
		t.Fatal("new incarnation's step must be live")
	}
}

func TestCycleDetectionAndRejection(t *testing.T) {
	g := New()
	a := g.NewNode(true, "A")
	b := g.NewNode(true, "B")
	if c := g.AddEdge(a, b, anyOp); c != nil {
		t.Fatal("a→b should not cycle")
	}
	cyc := g.AddEdge(b, a, anyOp)
	if cyc == nil {
		t.Fatal("b→a must close a cycle")
	}
	if cyc.Completer() != a.ID() {
		t.Errorf("completer = %d, want %d", cyc.Completer(), a.ID())
	}
	if cyc.CompleterData() != "A" {
		t.Errorf("completer data = %v", cyc.CompleterData())
	}
	if len(cyc.Edges) != 2 {
		t.Errorf("cycle length = %d, want 2", len(cyc.Edges))
	}
	// The rejected edge must not have been added: graph stays acyclic and
	// a second attempt reports the same cycle.
	if g.AddEdge(b, a, anyOp) == nil {
		t.Fatal("graph should still contain a→b only")
	}
	if g.Stats().Edges != 1 {
		t.Errorf("edges = %d, want 1", g.Stats().Edges)
	}
}

func TestSelfAndBottomEdgesFiltered(t *testing.T) {
	g := New()
	a := g.NewNode(true, nil)
	a2 := g.Tick(a)
	if c := g.AddEdge(a, a2, anyOp); c != nil {
		t.Fatal("self-edge must be filtered, not reported")
	}
	if c := g.AddEdge(None, a, anyOp); c != nil {
		t.Fatal("⊥ edge must be filtered")
	}
	if c := g.AddEdge(a, None, anyOp); c != nil {
		t.Fatal("⊥ edge must be filtered")
	}
	if g.Stats().Edges != 0 {
		t.Errorf("edges = %d, want 0", g.Stats().Edges)
	}
}

func TestEdgeTimestampReplacement(t *testing.T) {
	g := New()
	a := g.NewNode(true, nil)
	b := g.NewNode(true, nil)
	g.AddEdge(a, b, anyOp)
	a2 := g.Tick(a)
	b2 := g.Tick(b)
	g.AddEdge(a2, b2, anyOp)
	if g.Stats().Edges != 1 {
		t.Fatalf("duplicate node-pair edge stored: %d", g.Stats().Edges)
	}
	// Close a cycle to observe the stored timestamps.
	cyc := g.AddEdge(b2, a2, anyOp)
	if cyc == nil {
		t.Fatal("expected cycle")
	}
	e := cyc.Edges[0] // a→b edge on the path
	if e.TailTime != a2.Time() || e.HeadTime != b2.Time() {
		t.Errorf("edge timestamps not replaced: %+v", e)
	}
}

func TestHappensBeforeOrSame(t *testing.T) {
	g := New()
	a := g.NewNode(true, nil)
	b := g.NewNode(true, nil)
	c := g.NewNode(true, nil)
	g.AddEdge(a, b, anyOp)
	g.AddEdge(b, c, anyOp)
	if !g.HappensBeforeOrSame(a, c) {
		t.Error("a ⇒* c must hold transitively")
	}
	if !g.HappensBeforeOrSame(a, g.Tick(a)) {
		t.Error("same node must be ⊑")
	}
	if g.HappensBeforeOrSame(c, a) {
		t.Error("c ⇒* a must not hold")
	}
	if g.HappensBeforeOrSame(None, a) || g.HappensBeforeOrSame(a, None) {
		t.Error("⊥ never happens-before")
	}
}

func TestMergeAllBottom(t *testing.T) {
	g := New()
	if s := g.Merge([]Step{None, None}, anyOp, nil); s != None {
		t.Fatalf("merge of ⊥s = %v, want ⊥", s)
	}
	if g.Stats().Allocated != 0 {
		t.Fatal("merge of ⊥s must not allocate")
	}
}

func TestMergeReusesMaximalFinishedNode(t *testing.T) {
	g := New()
	a := g.NewNode(true, nil)
	b := g.NewNode(true, nil)
	g.AddEdge(a, b, anyOp)
	g.Finish(b) // b stays alive? no incoming? a→b gives b one incoming.
	s := g.Merge([]Step{b, a}, anyOp, nil)
	if s.ID() != b.ID() {
		t.Fatalf("merge should reuse b (happens-after a); got %v", s)
	}
	if g.Stats().Merged != 1 {
		t.Error("merge statistic not recorded")
	}
}

func TestMergeRefusesActiveNode(t *testing.T) {
	g := New()
	a := g.NewNode(true, nil) // still active
	s := g.Merge([]Step{a}, anyOp, nil)
	if s == None || s.ID() == a.ID() {
		t.Fatalf("merge must allocate rather than reuse active node; got %v", s)
	}
	if !g.HappensBeforeOrSame(a, s) {
		t.Error("fresh merge node must happen-after its predecessors")
	}
}

func TestMergeAllocatesOnIncomparable(t *testing.T) {
	g := New()
	a := g.NewNode(true, nil)
	b := g.NewNode(true, nil)
	g.Finish(a)
	g.Finish(b)
	// Pin both with a dummy successor so they stay alive.
	// (Finished with no incoming they'd be collected.)
	// Recreate: allocate first, edges after finish would be dropped. So
	// build pinned structure directly:
	a = g.NewNode(true, nil)
	b = g.NewNode(true, nil)
	s := g.Merge([]Step{a, b}, anyOp, "u")
	if s == None {
		t.Fatal("merge of incomparable steps must allocate")
	}
	if !g.HappensBeforeOrSame(a, s) || !g.HappensBeforeOrSame(b, s) {
		t.Error("merge node must happen-after all predecessors")
	}
	if g.Data(s) != "u" {
		t.Error("data not attached to fresh merge node")
	}
}

func TestStatsMaxAlive(t *testing.T) {
	g := New()
	var steps []Step
	for i := 0; i < 10; i++ {
		steps = append(steps, g.NewNode(true, nil))
	}
	for _, s := range steps {
		g.Finish(s)
	}
	st := g.Stats()
	if st.MaxAlive != 10 || st.Alive != 0 || st.Allocated != 10 || st.Collected != 10 {
		t.Errorf("stats = %+v", st)
	}
}

func TestNoGCKeepsNodes(t *testing.T) {
	g := New()
	g.SetGC(false)
	s := g.NewNode(true, nil)
	g.Finish(s)
	if g.Alive() != 1 {
		t.Fatal("GC disabled: node must persist")
	}
	if g.Resolve(s) != s {
		t.Fatal("step must stay resolvable without GC")
	}
}

func TestDeepChainCollection(t *testing.T) {
	// A long chain a1→a2→...→aN, all finished in order: collecting the
	// head cascades down the whole chain.
	g := New()
	const n = 1000
	steps := make([]Step, n)
	for i := range steps {
		steps[i] = g.NewNode(true, nil)
		if i > 0 {
			g.AddEdge(steps[i-1], steps[i], anyOp)
		}
	}
	for i := n - 1; i >= 1; i-- {
		g.Finish(steps[i]) // pinned by incoming edge; stays alive
	}
	if g.Alive() != n {
		t.Fatalf("alive = %d, want %d", g.Alive(), n)
	}
	g.Finish(steps[0])
	if g.Alive() != 0 {
		t.Fatalf("cascade failed: %d alive", g.Alive())
	}
}

func TestDebugDot(t *testing.T) {
	g := New()
	a := g.NewNode(true, "A")
	b := g.NewNode(false, "B")
	g.AddEdge(a, b, trace.Rd(2, 7))
	out := g.DebugDot()
	for _, want := range []string{"digraph hbgraph", `label="A"`, `label="B"`, "rd(2,x7)", "style=bold"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
}
