package graph

import "repro/internal/trace"

// EdgeProv is the access-pair provenance of a happens-before edge: which
// trace operations created it. The head access is the operation whose
// Step insertion added (or refreshed) the edge; the tail access is the
// earlier conflicting operation in the source transaction whose stored
// step (W(x), R(x,t) or U(m)) the edge was drawn from. Provenance is
// populated only when forensics is enabled — the zero value means "not
// recorded" and costs nothing on the default path.
type EdgeProv struct {
	// HeadIdx is the trace index of the operation that inserted the edge.
	HeadIdx int64
	// TailIdx is the trace index of the conflicting access at the tail.
	TailIdx int64
	// TailOp is that access. Valid only when HasTail is set: program-order
	// edges and edges recorded with forensics off carry no tail access.
	TailOp  trace.Op
	HasTail bool
	// Program marks a program-order edge (thread-successor ordering, the
	// L(t) ⇒ s edges of [INS ENTER]/merge), as opposed to a cross-thread
	// conflict edge.
	Program bool
}

// CycleEdge is one happens-before edge on a detected cycle, annotated with
// the timestamps of the operations at its tail and head (Section 4.3).
type CycleEdge struct {
	From, To         NodeID
	FromData, ToData any
	TailTime         uint64   // timestamp of the operation at the source
	HeadTime         uint64   // timestamp of the operation at the destination
	Op               trace.Op // the operation that generated the edge
	Prov             EdgeProv // access-pair provenance (forensics only)
}

// Cycle is a non-trivial cycle in the transactional happens-before graph,
// discovered when an edge insertion would close it. Edges are listed in
// happens-before order starting from the node that completed the cycle
// (the destination of the rejected edge), so Edges[0].From is the
// potentially blamed transaction D and Edges[len-1] is the rejected edge.
type Cycle struct {
	Edges []CycleEdge
}

// Completer returns the node that completed the cycle (the paper's D).
func (c *Cycle) Completer() NodeID { return c.Edges[0].From }

// CompleterData returns the metadata of the completing node.
func (c *Cycle) CompleterData() any { return c.Edges[0].FromData }

// Increasing reports whether the cycle is increasing (Section 4.3): for
// every node m other than the completer, the timestamp on the incoming
// edge to m is at most the timestamp on the outgoing edge from m. An
// increasing cycle witnesses that the completing transaction is not
// self-serializable, so blame can be assigned to it.
func (c *Cycle) Increasing() bool {
	n := len(c.Edges)
	for i := 0; i < n; i++ {
		in := c.Edges[i]
		out := c.Edges[(i+1)%n]
		if out.From == c.Completer() {
			continue // the completer itself is exempt
		}
		if in.HeadTime > out.TailTime {
			return false
		}
	}
	return true
}

// RootTime returns the timestamp within the completing transaction of the
// cycle's root operation — the operation whose edge leaves D. Together
// with TargetTime it identifies which atomic blocks of D to refute.
func (c *Cycle) RootTime() uint64 { return c.Edges[0].TailTime }

// TargetTime returns the timestamp within the completing transaction of
// the operation that closed the cycle.
func (c *Cycle) TargetTime() uint64 { return c.Edges[len(c.Edges)-1].HeadTime }

// AddEdge extends the happens-before relation with from ⇒ to (the paper's
// H ⊕ {(from, to)}). Edges from or to ⊥ (including stale steps) and
// self-edges are filtered out. If the edge would close a cycle, the cycle
// is returned and the edge is NOT added, keeping the graph acyclic; the
// caller reports the violation and continues.
func (g *Graph) AddEdge(from, to Step, op trace.Op) *Cycle {
	return g.AddEdgeP(from, to, op, EdgeProv{})
}

// AddEdgeP is AddEdge carrying access-pair provenance for the edge. The
// forensics-enabled engines use it; prov rides along on the edge (and is
// refreshed with the timestamps under ⊕) so a later cycle report can name
// the exact accesses that created each edge.
func (g *Graph) AddEdgeP(from, to Step, op trace.Op, prov EdgeProv) *Cycle {
	from, to = g.Resolve(from), g.Resolve(to)
	if from == None || to == None || from.ID() == to.ID() {
		return nil
	}
	src, dst := from.ID(), to.ID()
	nd := &g.nodes[src]
	// Last-edge memo: if this (src,dst) pair is exactly the edge we
	// appended or refreshed last time from src, the edge is already in H
	// and the graph is acyclic, so re-inserting it cannot close a cycle —
	// refresh the timestamps (⊕) and skip the ancestor check and the
	// edge-table scan entirely. Unfiltered loops hit this path on nearly
	// every iteration.
	if !g.noMemo && nd.memoIdx >= 0 && nd.memoTo == dst &&
		int(nd.memoIdx) < len(nd.out) && nd.out[nd.memoIdx].to == dst {
		e := &nd.out[nd.memoIdx]
		e.tailTime = from.Time()
		e.headTime = to.Time()
		e.op = op
		e.prov = prov
		if h := to.Time(); h > g.nodes[dst].lastInHead {
			g.nodes[dst].lastInHead = h
		}
		g.stats.FilteredEdges++
		if g.met != nil {
			g.met.memoHits.Inc()
		}
		return nil
	}
	if g.met != nil {
		g.met.cycleChecks.Inc()
	}
	// O(1) cycle test via the ancestor sets; the DFS below runs only on
	// the (rare) violation path, to extract the cycle for the report.
	if g.isAncestor(dst, src) {
		// to ⇒* from already holds; adding from ⇒ to would close a cycle.
		path := g.findPath(dst, src)
		if path == nil {
			panic("graph: ancestor set claims a path the edges do not have")
		}
		edges := make([]CycleEdge, 0, len(path)+1)
		for _, e := range path {
			edges = append(edges, e)
		}
		edges = append(edges, CycleEdge{
			From: src, To: dst,
			FromData: g.nodes[src].data, ToData: g.nodes[dst].data,
			TailTime: from.Time(), HeadTime: to.Time(),
			Op: op, Prov: prov,
		})
		if g.met != nil {
			g.met.cyclesDetected.Inc()
		}
		return &Cycle{Edges: edges}
	}
	for i := range nd.out {
		if nd.out[i].to == dst {
			// Replace timestamps: one edge per node pair (Section 4.3).
			nd.out[i].tailTime = from.Time()
			nd.out[i].headTime = to.Time()
			nd.out[i].op = op
			nd.out[i].prov = prov
			nd.memoTo, nd.memoIdx = dst, int32(i)
			if h := to.Time(); h > g.nodes[dst].lastInHead {
				g.nodes[dst].lastInHead = h
			}
			return nil
		}
	}
	nd.out = append(nd.out, edge{to: dst, tailTime: from.Time(), headTime: to.Time(), op: op, prov: prov})
	nd.memoTo, nd.memoIdx = dst, int32(len(nd.out)-1)
	g.nodes[dst].in++
	if h := to.Time(); h > g.nodes[dst].lastInHead {
		g.nodes[dst].lastInHead = h
	}
	g.stats.Edges++
	if g.met != nil {
		g.met.edgesAdded.Inc()
		g.met.edges.Add(1)
	}
	g.addAncestors(dst, g.ancestorsPlusSelf(src))
	return nil
}

// HappensBeforeOrSame reports whether a's node reaches b's node in H*
// (reflexive-transitive closure). Stale or ⊥ steps never happen-before
// anything.
func (g *Graph) HappensBeforeOrSame(a, b Step) bool {
	a, b = g.Resolve(a), g.Resolve(b)
	if a == None || b == None {
		return false
	}
	if a.ID() == b.ID() {
		return true
	}
	return g.isAncestor(a.ID(), b.ID())
}

// findPath returns the edges of some path src ⇒* dst, or nil if none.
// The live graph is small (a few dozen nodes even on large benchmarks,
// Table 1), so an iterative DFS per query is cheap.
func (g *Graph) findPath(src, dst NodeID) []CycleEdge {
	if src == dst {
		return []CycleEdge{}
	}
	g.gen++
	type frame struct {
		id   NodeID
		next int
	}
	stack := []frame{{id: src}}
	g.nodes[src].visited = g.gen
	var path []CycleEdge
	for len(stack) > 0 {
		f := &stack[len(stack)-1]
		nd := &g.nodes[f.id]
		if f.next >= len(nd.out) {
			stack = stack[:len(stack)-1]
			if len(path) > 0 {
				path = path[:len(path)-1]
			}
			continue
		}
		e := nd.out[f.next]
		f.next++
		path = append(path, CycleEdge{
			From: f.id, To: e.to,
			FromData: nd.data, ToData: g.nodes[e.to].data,
			TailTime: e.tailTime, HeadTime: e.headTime,
			Op: e.op, Prov: e.prov,
		})
		if e.to == dst {
			out := make([]CycleEdge, len(path))
			copy(out, path)
			return out
		}
		if g.nodes[e.to].visited != g.gen {
			g.nodes[e.to].visited = g.gen
			stack = append(stack, frame{id: e.to})
		} else {
			path = path[:len(path)-1]
		}
	}
	return nil
}
