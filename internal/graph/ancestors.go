package graph

// Ancestor tracking (Section 5): "For each node, we maintain a set of
// ancestors of that node. This ancestor set allows us to immediately
// detect when a cycle is about to be added to the graph", keeps the graph
// acyclic for reference-counting GC, and makes the merge function's
// happens-before queries O(1).
//
// Entries are stamped with the ancestor's incarnation (birth time) so
// that collected-and-recycled nodes invalidate lazily: a stale entry is
// simply skipped and compacted away on the next touch, with no eager
// purge walk at collection time.

// ancEntry records one ancestor node and the incarnation it referred to.
type ancEntry struct {
	id    NodeID
	birth uint64
}

// liveEntry reports whether e still names the current incarnation.
func (g *Graph) liveEntry(e ancEntry) bool {
	nd := &g.nodes[e.id]
	return nd.inUse && nd.birthTime == e.birth
}

// isAncestor reports whether node a (current incarnation) is an ancestor
// of node b, compacting stale entries as a side effect.
func (g *Graph) isAncestor(a, b NodeID) bool {
	nd := &g.nodes[b]
	out := nd.anc[:0]
	found := false
	for _, e := range nd.anc {
		if !g.liveEntry(e) {
			continue
		}
		out = append(out, e)
		if e.id == a {
			found = true
		}
	}
	nd.anc = out
	return found
}

// addAncestors merges entries into n's ancestor set and, when anything
// new arrived, pushes the same entries to n's descendants. The graph is
// acyclic, so the walk terminates; it prunes wherever a node already
// knows every entry.
func (g *Graph) addAncestors(n NodeID, entries []ancEntry) {
	nd := &g.nodes[n]
	added := false
	for _, e := range entries {
		if e.id == n {
			continue // self-entries cannot arise on an acyclic graph
		}
		present := false
		for _, have := range nd.anc {
			if have == e {
				present = true
				break
			}
		}
		if !present {
			nd.anc = append(nd.anc, e)
			added = true
		}
	}
	if !added {
		return
	}
	for _, e := range nd.out {
		g.addAncestors(e.to, entries)
	}
}

// ancestorsPlusSelf returns n's live ancestor entries plus n itself, for
// propagation along a new outgoing edge. The returned slice is a reusable
// graph-level buffer: callers must consume it before the next graph call.
func (g *Graph) ancestorsPlusSelf(n NodeID) []ancEntry {
	nd := &g.nodes[n]
	out := g.ancScratch[:0]
	keep := nd.anc[:0]
	for _, e := range nd.anc {
		if g.liveEntry(e) {
			out = append(out, e)
			keep = append(keep, e)
		}
	}
	nd.anc = keep
	out = append(out, ancEntry{id: n, birth: nd.birthTime})
	g.ancScratch = out
	return out
}
