package graph

import (
	"testing"

	"repro/internal/obs"
)

// Repeated insertion of the same (src,dst) pair must be served by the
// last-edge memo: timestamps are ⊕-replaced, no new edge or ancestor
// work happens, and Stats.FilteredEdges counts the hits.
func TestEdgeMemoDedupesRepeatedPair(t *testing.T) {
	g := New()
	reg := obs.NewRegistry()
	g.SetMetrics(reg)
	a := g.NewNode(true, "a")
	b := g.NewNode(true, "b")

	if c := g.AddEdge(a, b, anyOp); c != nil {
		t.Fatal("unexpected cycle")
	}
	if g.Stats().FilteredEdges != 0 {
		t.Fatalf("first insertion filtered: %+v", g.Stats())
	}
	checksBefore := reg.Counter("graph_cycle_checks_total").Value()
	for i := 0; i < 5; i++ {
		a2, b2 := g.Tick(a), g.Tick(b)
		if c := g.AddEdge(a2, b2, anyOp); c != nil {
			t.Fatal("unexpected cycle")
		}
		a, b = a2, b2
	}
	st := g.Stats()
	if st.FilteredEdges != 5 {
		t.Fatalf("FilteredEdges = %d, want 5", st.FilteredEdges)
	}
	if st.Edges != 1 {
		t.Fatalf("Edges = %d, want 1 (⊕ must replace, not append)", st.Edges)
	}
	if got := reg.Counter("graph_edges_memo_hits_total").Value(); got != 5 {
		t.Fatalf("memo hit counter = %d, want 5", got)
	}
	if got := reg.Counter("graph_cycle_checks_total").Value(); got != checksBefore {
		t.Fatalf("memo hits ran %d extra cycle checks", got-checksBefore)
	}
	// The replaced timestamps must be the latest pair, exactly as the
	// slow ⊕ path would leave them.
	nd := &g.nodes[a.ID()]
	if nd.out[0].tailTime != a.Time() || nd.out[0].headTime != b.Time() {
		t.Fatalf("edge times (%d,%d), want (%d,%d)",
			nd.out[0].tailTime, nd.out[0].headTime, a.Time(), b.Time())
	}
	if err := g.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// The memo tracks only the most recent pair: alternating destinations
// falls back to the edge-table scan and stays correct.
func TestEdgeMemoAlternatingDestinations(t *testing.T) {
	g := New()
	a := g.NewNode(true, nil)
	b := g.NewNode(true, nil)
	c := g.NewNode(true, nil)
	for i := 0; i < 4; i++ {
		a = g.Tick(a)
		if cy := g.AddEdge(a, g.Tick(b), anyOp); cy != nil {
			t.Fatal("cycle")
		}
		a = g.Tick(a)
		if cy := g.AddEdge(a, g.Tick(c), anyOp); cy != nil {
			t.Fatal("cycle")
		}
	}
	st := g.Stats()
	if st.Edges != 2 {
		t.Fatalf("Edges = %d, want 2", st.Edges)
	}
	if st.FilteredEdges != 0 {
		t.Fatalf("FilteredEdges = %d, want 0 (memo never matches)", st.FilteredEdges)
	}
	if err := g.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// A recycled node must not inherit the previous incarnation's memo or
// lastInHead watermark.
func TestMemoAndWatermarkResetOnRecycle(t *testing.T) {
	g := New()
	a := g.NewNode(true, nil)
	b := g.NewNode(true, nil)
	g.AddEdge(a, b, anyOp)
	g.Finish(a) // a has no in-edges: collected, cascading b's in-count to 0
	g.Finish(b)
	if g.Alive() != 0 {
		t.Fatalf("alive = %d, want 0", g.Alive())
	}
	// Recycle both slots; the fresh incarnations start with no memo and
	// a zero watermark even though timestamps keep increasing.
	c := g.NewNode(true, nil)
	if !g.NoNewerIncoming(c) {
		t.Fatal("fresh node must report no newer incoming edge")
	}
	d := g.NewNode(true, nil)
	if cy := g.AddEdge(c, d, anyOp); cy != nil {
		t.Fatal("cycle")
	}
	if g.Stats().FilteredEdges != 0 {
		t.Fatal("stale memo survived recycling")
	}
	if err := g.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestNoNewerIncomingTracksEdgeHeads(t *testing.T) {
	g := New()
	a := g.NewNode(true, nil)
	b := g.NewNode(true, nil)
	if !g.NoNewerIncoming(b) {
		t.Fatal("no edges yet: must hold")
	}
	b2 := g.Tick(b)
	g.AddEdge(a, b2, anyOp) // head at b2.Time()
	if g.NoNewerIncoming(b) {
		t.Fatal("edge head is newer than the original step")
	}
	if !g.NoNewerIncoming(b2) {
		t.Fatal("step at the head itself has no newer incoming edge")
	}
	if g.NoNewerIncoming(None) {
		t.Fatal("⊥ must not satisfy NoNewerIncoming")
	}
}

func TestReusable(t *testing.T) {
	g := New()
	a := g.NewNode(true, nil)
	if g.Reusable(a) {
		t.Fatal("active node is not reusable")
	}
	b := g.NewNode(true, nil)
	g.AddEdge(a, b, anyOp) // pin a... (edge is a→b: pins b)
	g.Finish(a)
	// a had no incoming edges, so it was collected on Finish.
	if g.Reusable(a) {
		t.Fatal("collected step is not reusable")
	}
	c := g.NewNode(false, nil)
	g.AddEdge(b, c, anyOp)
	g.Finish(c)
	// c is finished but pinned by b's edge: live and inactive.
	if !g.Reusable(c) {
		t.Fatal("live finished node must be reusable")
	}
	if g.Reusable(None) {
		t.Fatal("⊥ is not reusable")
	}
}
