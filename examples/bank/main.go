// A bank whose transfer is composed of two individually-locked account
// updates — atomic by intent, not by construction:
//
//	go run ./examples/bank
//
// Velodrome catches the non-atomic transfer (money is conjured when a
// concurrent audit reads between the withdraw and the deposit), and stays
// silent on the fixed version that holds both account locks across the
// whole transfer (two-phase locking).
package main

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/rr"
)

type bank struct {
	locks    []*rr.Mutex
	balances []*rr.Var
}

func newBank(rt *rr.Runtime, accounts int, opening int64) *bank {
	b := &bank{}
	for i := 0; i < accounts; i++ {
		b.locks = append(b.locks, rt.NewMutex(fmt.Sprintf("Account%d.lock", i)))
		b.balances = append(b.balances, rt.NewVar(fmt.Sprintf("Account%d.balance", i)))
	}
	return b
}

// transferBroken locks each account separately: a concurrent audit can
// observe the money in flight. NOT atomic.
func (b *bank) transferBroken(t *rr.Thread, from, to int, amount int64) {
	t.Atomic("Bank.transfer", func() {
		b.locks[from].With(t, func() {
			b.balances[from].Add(t, -amount)
		})
		t.Yield() // the in-flight window
		t.Yield()
		b.locks[to].With(t, func() {
			b.balances[to].Add(t, amount)
		})
	})
}

// transferFixed holds both locks for the whole move (in account order, so
// no deadlock): atomic under two-phase locking.
func (b *bank) transferFixed(t *rr.Thread, from, to int, amount int64) {
	lo, hi := from, to
	if lo > hi {
		lo, hi = hi, lo
	}
	t.Atomic("Bank.transferFixed", func() {
		b.locks[lo].Lock(t)
		b.locks[hi].Lock(t)
		b.balances[from].Add(t, -amount)
		b.balances[to].Add(t, amount)
		b.locks[hi].Unlock(t)
		b.locks[lo].Unlock(t)
	})
}

// audit sums all balances under all locks: atomic.
func (b *bank) audit(t *rr.Thread) int64 {
	var total int64
	t.Atomic("Bank.audit", func() {
		for i := range b.locks {
			b.locks[i].Lock(t)
		}
		for i := range b.balances {
			total += b.balances[i].Load(t)
		}
		for i := len(b.locks) - 1; i >= 0; i-- {
			b.locks[i].Unlock(t)
		}
	})
	return total
}

func run(fixed bool) (warnings int, observed []int64) {
	velo := rr.NewVelodrome(core.Options{})
	rr.Run(rr.Options{Seed: 3, Backend: velo}, func(t *rr.Thread) {
		rt := t.Runtime()
		b := newBank(rt, 3, 100)
		for i := range b.balances {
			b.balances[i].Store(t, 100)
		}
		mover := t.Fork(func(c *rr.Thread) {
			for i := 0; i < 6; i++ {
				if fixed {
					b.transferFixed(c, i%3, (i+1)%3, 10)
				} else {
					b.transferBroken(c, i%3, (i+1)%3, 10)
				}
			}
		})
		auditor := t.Fork(func(c *rr.Thread) {
			for i := 0; i < 6; i++ {
				observed = append(observed, b.audit(c))
			}
		})
		t.Join(mover)
		t.Join(auditor)
	})
	return len(velo.Warnings()), observed
}

func main() {
	warnings, observed := run(false)
	fmt.Printf("broken transfer: %d velodrome warnings; audit totals %v\n", warnings, observed)
	fmt.Println("  (totals below 300 show the money in flight — the atomicity bug is real)")
	warnings, observed = run(true)
	fmt.Printf("fixed transfer:  %d velodrome warnings; audit totals %v\n", warnings, observed)
}
