// Quickstart: check a hand-written trace for conflict-serializability
// with the core Velodrome analysis, no instrumentation framework needed.
//
//	go run ./examples/quickstart
//
// The trace is the paper's first example (Section 2): a read-modify-write
// inside an atomic block, interleaved with another thread's write. The
// checker reports a happens-before cycle and blames the atomic block.
package main

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/trace"
)

func main() {
	x := trace.Var(0)
	tr := trace.Trace{
		trace.Beg(1, "increment"), // Thread 1: begin atomic
		trace.Rd(1, x),            //   tmp = x
		trace.Wr(2, x),            // Thread 2:      x = 0
		trace.Wr(1, x),            //   x = tmp + 1
		trace.Fin(1),              // end
	}
	fmt.Println("trace:")
	fmt.Println(tr)
	fmt.Println()

	res := core.CheckTrace(tr, core.Options{})
	if res.Serializable {
		fmt.Println("serializable (unexpected!)")
		return
	}
	for _, w := range res.Warnings {
		fmt.Println(w)
		fmt.Printf("blamed method: %s (increasing cycle: %v)\n", w.Method(), w.Increasing)
	}

	// The same code without the interleaved write is serializable.
	serial := trace.Trace{
		trace.Beg(1, "increment"),
		trace.Rd(1, x),
		trace.Wr(1, x),
		trace.Fin(1),
		trace.Wr(2, x),
	}
	res = core.CheckTrace(serial, core.Options{})
	fmt.Printf("\nwithout the interleaved write: serializable = %v\n", res.Serializable)
	fmt.Printf("graph stats: %d transactions allocated, max %d alive, %d merged away\n",
		res.Stats.Allocated, res.Stats.MaxAlive, res.Stats.Merged)
}
