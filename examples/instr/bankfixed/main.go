// Bankfixed is bankbug with the atomicity bug repaired: withdrawAll
// holds mu across the whole read-modify-write, so every interleaving of
// the deposit is serializable and veloinstr -run exits 0. The same
// pruning structure as bankbug applies (balance and transfers are
// lock-protected, openingBalance thread-local, lastAudit shared).
package main

import "sync"

var mu sync.Mutex

var balance int

var statsMu sync.Mutex

var transfers int

var openingBalance int

var lastAudit int

var started = make(chan struct{})

func noteTransfer() {
	statsMu.Lock()
	transfers++
	statsMu.Unlock()
}

func deposit(n int) {
	mu.Lock()
	balance += n
	mu.Unlock()
	noteTransfer()
}

// withdrawAll drains the account inside a single critical section: the
// read and the write cannot be separated by a concurrent deposit.
//
//velo:atomic
func withdrawAll() int {
	started <- struct{}{} // handshake: concurrent deposit may proceed
	mu.Lock()
	n := balance
	balance -= n
	mu.Unlock()
	noteTransfer()
	lastAudit = n
	return n
}

func main() {
	openingBalance = 100
	mu.Lock()
	balance = openingBalance
	mu.Unlock()
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		withdrawAll()
	}()
	<-started
	deposit(50)
	wg.Wait()
	if lastAudit > openingBalance+50 {
		println("impossible audit", lastAudit)
	}
}
