// Counter seeds a classic lost-update atomicity violation on an
// unprotected shared counter: two atomic workers interleave their
// read-compute-write sequences (forced deterministically by channel
// ping-pong), so both engines report both workers non-serializable.
//
// Pruning fodder for -analyze:
//   - total is always updated under tallyMu: lock-protected, pruned.
//   - config is only touched by main before the fork: thread-local.
//   - hits is read and written by both workers with no lock: shared.
package main

import "sync"

var hits int

var tallyMu sync.Mutex

var total int

var config int

var toB = make(chan struct{})

var toA = make(chan struct{})

func tally() {
	tallyMu.Lock()
	total++
	tallyMu.Unlock()
}

//velo:atomic
func workA() {
	h := hits         // read
	toB <- struct{}{} // let B read too
	<-toA             // wait for B's read
	hits = h + 1      // write from a stale read
	toB <- struct{}{} // let B write
	tally()
}

//velo:atomic
func workB() {
	<-toB
	h := hits // read, before A's write
	toA <- struct{}{}
	<-toB
	hits = h + 2 // write, clobbering A's update
	tally()
}

func main() {
	config = 3
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		workA()
	}()
	go func() {
		defer wg.Done()
		workB()
	}()
	wg.Wait()
	if hits != config {
		println("lost update: hits =", hits)
	}
}
