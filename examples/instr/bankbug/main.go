// Bankbug is the paper's motivating bank example with a seeded
// atomicity bug: withdrawAll is annotated atomic but reads the balance
// in one critical section and writes it back in another, so a deposit
// can slip between the two. Channel handshakes force that interleaving
// deterministically (channels carry no trace events, so the violation
// is observed purely through the shared-variable and lock operations).
//
// Pruning fodder for -analyze:
//   - balance and transfers are only ever touched under mu / statsMu,
//     so both are lock-protected and their accesses are pruned — the
//     violation is still caught from the acq/rel events alone.
//   - openingBalance is only touched by the main goroutine: thread-local.
//   - lastAudit is written by the withdrawer and read by main without a
//     common lock: genuinely shared, so its accesses are emitted.
package main

import "sync"

var mu sync.Mutex

var balance int

var statsMu sync.Mutex

var transfers int

var openingBalance int

var lastAudit int

var step = make(chan struct{})

func noteTransfer() {
	statsMu.Lock()
	transfers++
	statsMu.Unlock()
}

func deposit(n int) {
	mu.Lock()
	balance += n
	mu.Unlock()
	noteTransfer()
}

// withdrawAll drains the account. The read of balance and the write
// that zeroes it sit in different critical sections: not atomic.
//
//velo:atomic
func withdrawAll() int {
	mu.Lock()
	n := balance
	mu.Unlock()
	step <- struct{}{} // handshake: balance read, let main deposit
	<-step             // handshake: deposit done
	mu.Lock()
	balance -= n
	mu.Unlock()
	noteTransfer()
	lastAudit = n
	return n
}

func main() {
	openingBalance = 100
	mu.Lock()
	balance = openingBalance
	mu.Unlock()
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		withdrawAll()
	}()
	<-step             // withdrawer has read the balance
	deposit(50)        // slips between its read and its write
	step <- struct{}{} // let the withdrawer finish
	wg.Wait()
	if lastAudit != openingBalance+50 {
		println("lost update: audited", lastAudit)
	}
}
