// Auditfixed is auditbug with the atomicity bug repaired: reconcile
// snapshots the drift and applies the correction inside a single
// critical section, so no credit can intervene and every interleaving
// is serializable (veloinstr -run exits 0). The pruning structure is
// the same as auditbug — in particular ledger is still only provably
// lock-protected by the interprocedural entry-lock analysis, because
// credit and debit never touch mu themselves.
package main

import "sync"

// target is the balance the reconciler drives the ledger back to.
const target = 100

var mu sync.Mutex

var ledger int

var auditMu sync.Mutex

var audits int

var openingLedger int

var lastReconciled int

var started = make(chan struct{})

// credit adds to the ledger. Callers must hold mu — the lock never
// appears in this function, so proving the access protected takes the
// interprocedural entry-lock analysis.
func credit(n int) {
	ledger += n
}

// debit removes from the ledger. Same locking contract as credit.
func debit(n int) {
	ledger -= n
}

func recordAudit() {
	auditMu.Lock()
	audits++
	auditMu.Unlock()
}

// reconcile snapshots and corrects the drift in one critical section:
// the concurrent credit lands wholly before or wholly after it.
//
//velo:atomic
func reconcile() {
	started <- struct{}{} // handshake: concurrent credit may proceed
	mu.Lock()
	drift := ledger - target
	debit(drift)
	mu.Unlock()
	recordAudit()
	lastReconciled = drift
}

func main() {
	openingLedger = target
	mu.Lock()
	credit(openingLedger)
	mu.Unlock()
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		reconcile()
	}()
	<-started
	mu.Lock()
	credit(25)
	mu.Unlock()
	wg.Wait()
	recordAudit()
	mu.Lock()
	final := ledger
	mu.Unlock()
	if final != openingLedger && final != openingLedger+25 {
		println("impossible ledger:", final, "drift was", lastReconciled)
	}
}
