// Auditbug is a ledger-reconciliation example with a seeded atomicity
// bug: reconcile is annotated atomic but snapshots the ledger in one
// critical section and applies the correction in another, so a credit
// can slip between the two and the correction is computed from a stale
// snapshot. Channel handshakes force that interleaving
// deterministically, exactly like bankbug.
//
// What makes this pair different from bankbug is the pruning story:
// credit and debit mutate the ledger without touching mu themselves —
// every caller holds it around the call. A per-function analysis must
// classify ledger as shared; only the interprocedural entry-lock
// inference proves it lock-protected, so this example is where
// `veloinstr -analyze` and `veloinstr -analyze -intra` visibly diverge.
//
// Pruning fodder for -analyze:
//   - ledger is mutated by credit/debit, which never lock: pruned only
//     by the interprocedural analysis (held: mu, interprocedural).
//   - audits is only touched under auditMu: lock-protected, pruned.
//   - openingLedger is only touched by the main goroutine: thread-local.
//   - lastReconciled is written by the reconciler and read by main with
//     no common lock: genuinely shared, so its accesses are emitted.
package main

import "sync"

// target is the balance the reconciler drives the ledger back to.
const target = 100

var mu sync.Mutex

var ledger int

var auditMu sync.Mutex

var audits int

var openingLedger int

var lastReconciled int

var step = make(chan struct{})

// credit adds to the ledger. Callers must hold mu — the lock never
// appears in this function, so proving the access protected takes the
// interprocedural entry-lock analysis.
func credit(n int) {
	ledger += n
}

// debit removes from the ledger. Same locking contract as credit.
func debit(n int) {
	ledger -= n
}

func recordAudit() {
	auditMu.Lock()
	audits++
	auditMu.Unlock()
}

// reconcile snapshots the ledger drift in one critical section and
// applies the correction in another: not atomic. A credit between the
// two leaves the correction stale.
//
//velo:atomic
func reconcile() {
	mu.Lock()
	drift := ledger - target
	mu.Unlock()
	step <- struct{}{} // handshake: drift snapshotted, let main credit
	<-step             // handshake: concurrent credit done
	mu.Lock()
	debit(drift)
	mu.Unlock()
	recordAudit()
	lastReconciled = drift
}

func main() {
	openingLedger = target
	mu.Lock()
	credit(openingLedger)
	mu.Unlock()
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		reconcile()
	}()
	<-step // reconciler has snapshotted the drift
	mu.Lock()
	credit(25) // slips between its snapshot and its correction
	mu.Unlock()
	step <- struct{}{} // let the reconciler finish
	wg.Wait()
	recordAudit()
	mu.Lock()
	final := ledger
	mu.Unlock()
	if final != openingLedger {
		println("reconciliation missed a credit: ledger is", final, "drift was", lastReconciled)
	}
}
