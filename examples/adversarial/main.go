// Adversarial scheduling (Section 5): a tight unsynchronized
// read-modify-write that ordinary schedules almost never witness, hunted
// with the Atomizer-guided scheduler:
//
//	go run ./examples/adversarial
//
// The program runs the same workload over many seeds, plain and
// adversarial. The advisor watches the event stream with an embedded
// Atomizer; when a thread is about to complete a suspicious racy RMW
// inside an atomic block, the scheduler parks it so a conflicting write
// can interleave — turning a potential violation into a concrete witness
// Velodrome can report (with zero risk of a false alarm).
package main

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/rr"
)

const (
	seeds   = 30
	workers = 2
	updates = 2
)

// workload: each worker tightly increments a shared hit counter inside an
// atomic block (window of a single scheduling point) amid heavier
// unrelated work.
func workload(t *rr.Thread) {
	rt := t.Runtime()
	hits := rt.NewVar("Cache.hits")
	scratch := rt.NewVar("Worker.scratch")
	var hs []*rr.Handle
	for w := 0; w < workers; w++ {
		hs = append(hs, t.Fork(func(c *rr.Thread) {
			for i := 0; i < updates; i++ {
				// Unrelated padding work dilutes the racy window.
				for j := 0; j < 25; j++ {
					scratch.Add(c, 1)
				}
				c.Atomic("Cache.recordHit", func() {
					h := hits.Load(c)
					hits.Store(c, h+1) // zero-slack RMW
				})
			}
		}))
	}
	for _, h := range hs {
		t.Join(h)
	}
}

func detect(seed int64, adversarial bool) (bool, int) {
	velo := rr.NewVelodrome(core.Options{})
	opts := rr.Options{Seed: seed, Backend: velo}
	if adversarial {
		adv := rr.NewAtomizerAdvisor()
		opts.Backend = rr.Multi{velo, adv}
		opts.Advisor = adv
		opts.ParkSteps = 40
	}
	rep := rr.Run(opts, workload)
	for _, w := range velo.Warnings() {
		if w.Method() == "Cache.recordHit" {
			return true, rep.Delays
		}
	}
	return false, rep.Delays
}

func main() {
	plainHits, advHits, delays := 0, 0, 0
	for seed := int64(1); seed <= seeds; seed++ {
		if ok, _ := detect(seed, false); ok {
			plainHits++
		}
		if ok, d := detect(seed, true); ok {
			advHits++
			delays += d
		}
	}
	fmt.Printf("tight racy RMW across %d seeds:\n", seeds)
	fmt.Printf("  plain scheduling:       found in %2d/%d runs (%.0f%%)\n",
		plainHits, seeds, 100*float64(plainHits)/seeds)
	fmt.Printf("  adversarial scheduling: found in %2d/%d runs (%.0f%%), %d pauses total\n",
		advHits, seeds, 100*float64(advHits)/seeds, delays)
	fmt.Println("\nThe paper reports the same effect on injected defects: ~30% plain vs")
	fmt.Println("~70% adversarial detection (Section 6); run `velobench -inject`.")
}
