// Atomicity specifications (Section 5): Velodrome "takes as input a
// compiled Java program and a specification of which methods in that
// program should be atomic".
//
//	go run ./examples/spec
//
// The program has a method that is non-atomic by design (a lock-free
// statistics counter nobody expects to be atomic) and a method with a
// genuine composition bug. Checking everything drowns the real defect in
// the expected warning; exempting the counter via the specification
// leaves exactly the bug — and, as the paper notes for Table 1, the
// exempted run does MORE analysis work, because the trace now contains
// many small unary transactions instead of monolithic ones.
package main

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/rr"
	"repro/internal/trace"
)

func workload(th *rr.Thread) {
	rt := th.Runtime()
	hits := rt.NewVar("Stats.hits")     // lock-free counter: racy on purpose
	table := rt.NewVar("Registry.size") // lock-protected, but composed badly
	mu := rt.NewMutex("Registry.lock")
	var hs []*rr.Handle
	for i := 0; i < 3; i++ {
		hs = append(hs, th.Fork(func(c *rr.Thread) {
			for j := 0; j < 6; j++ {
				// Everyone knows Stats.bump is not atomic; it is noise.
				c.Atomic("Stats.bump", func() {
					h := hits.Load(c)
					c.Yield()
					hits.Store(c, h+1)
				})
				// Registry.grow is SUPPOSED to be atomic; the two locked
				// sections make it the real defect.
				c.Atomic("Registry.grow", func() {
					var n int64
					mu.With(c, func() { n = table.Load(c) })
					c.Yield()
					mu.With(c, func() { table.Store(c, n+1) })
				})
			}
		}))
	}
	for _, h := range hs {
		th.Join(h)
	}
}

func run(ignore map[trace.Label]bool) []core.MethodSummary {
	velo := rr.NewVelodrome(core.Options{Ignore: ignore})
	rr.Run(rr.Options{Seed: 2, Backend: velo}, workload)
	return core.Summarize(velo.Warnings())
}

func main() {
	show := func(sums []core.MethodSummary) {
		for _, s := range sums {
			name := string(s.Method)
			if name == "" {
				name = "(blame unassigned)"
			}
			fmt.Printf("  %-20s %d warnings\n", name, s.Count)
		}
	}
	fmt.Println("checking every method:")
	show(run(nil))
	fmt.Println("\nwith Stats.bump exempted by the atomicity specification:")
	show(run(map[trace.Label]bool{"Stats.bump": true}))
}
