// Parallel mode: the same program under the deterministic seeded
// scheduler and under real goroutines racing on the Go scheduler:
//
//	go run ./examples/parallel
//
// Both modes feed the identical analysis; the deterministic mode is what
// the experiments use (reproducible interleavings), the parallel mode is
// how RoadRunner actually deploys. Velodrome's guarantee is per observed
// trace, so it holds under either scheduler: every warning below is a
// real conflict-serializability violation of the run that produced it.
package main

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/rr"
)

func workload(t *rr.Thread) {
	rt := t.Runtime()
	balance := rt.NewVar("Account.balance")
	mu := rt.NewMutex("Account.lock")
	var hs []*rr.Handle
	for i := 0; i < 4; i++ {
		hs = append(hs, t.Fork(func(c *rr.Thread) {
			for j := 0; j < 10; j++ {
				// deposit: properly locked — atomic.
				c.Atomic("Account.deposit", func() {
					mu.With(c, func() { balance.Add(c, 5) })
				})
				// applyFee: read outside the lock, write inside — not atomic.
				c.Atomic("Account.applyFee", func() {
					b := balance.Load(c)
					mu.With(c, func() { balance.Store(c, b-1) })
				})
			}
		}))
	}
	for _, h := range hs {
		t.Join(h)
	}
}

func run(parallel bool, seed int64) (methods map[string]bool, events int) {
	velo := rr.NewVelodrome(core.Options{})
	rep := rr.Run(rr.Options{Parallel: parallel, Seed: seed, Backend: velo}, workload)
	methods = map[string]bool{}
	for _, s := range core.Summarize(velo.Warnings()) {
		if s.Method != "" {
			methods[string(s.Method)] = true
		}
	}
	return methods, rep.Events
}

func main() {
	det, ev := run(false, 7)
	fmt.Printf("deterministic (seed 7): %d events, blamed methods %v\n", ev, keys(det))
	for i := 0; i < 3; i++ {
		par, ev := run(true, 0)
		fmt.Printf("parallel run %d:        %d events, blamed methods %v\n", i+1, ev, keys(par))
	}
	fmt.Println("\nAccount.deposit is never blamed (it is atomic in every schedule);")
	fmt.Println("Account.applyFee is blamed whenever a schedule witnesses its stale write.")
}

func keys(m map[string]bool) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	if len(out) == 0 {
		out = append(out, "(none)")
	}
	return out
}
