// The volatile-flag handoff program of Section 2 — the paper's showcase
// of why completeness matters:
//
//	go run ./examples/flaghandoff
//
// Two threads alternate exclusive access to a shared counter, handing
// ownership back and forth through a flag variable instead of a lock.
// Every trace of this program is serializable. Velodrome stays silent;
// the Atomizer, whose Eraser-based mover analysis cannot understand the
// flag protocol, reports a false alarm on the same run.
package main

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/rr"
)

const rounds = 4

func main() {
	velo := rr.NewVelodrome(core.Options{})
	atom := rr.NewAtomizer()
	var finalX int64
	rep := rr.Run(rr.Options{Seed: 1, Backend: rr.Multi{velo, atom}}, func(t *rr.Thread) {
		rt := t.Runtime()
		x := rt.NewVar("x")
		b := rt.NewVar("b")
		b.Store(t, 1) // thread 1 goes first
		work := func(me, next int64, label string) func(*rr.Thread) {
			return func(c *rr.Thread) {
				for i := 0; i < rounds; i++ {
					// while (b != me) skip;
					c.Until(func() bool { return b.Load(c) == me })
					c.Atomic(label, func() {
						tmp := x.Load(c)
						x.Store(c, tmp+1)
						b.Store(c, next) // hand off
					})
				}
			}
		}
		h1 := t.Fork(work(1, 2, "Worker1.increment"))
		h2 := t.Fork(work(2, 1, "Worker2.increment"))
		t.Join(h1)
		t.Join(h2)
		finalX = x.Load(t)
	})

	fmt.Printf("ran %d events; final counter = %d (always %d: the protocol works)\n\n",
		rep.Events, finalX, 2*rounds)
	fmt.Printf("velodrome warnings: %d  (sound AND complete: the trace is serializable)\n",
		len(velo.Warnings()))
	fmt.Printf("atomizer warnings:  %d  (incomplete: false alarms on the flag protocol)\n\n",
		len(atom.Warnings()))
	seen := map[string]bool{}
	for _, w := range atom.Warnings() {
		if !seen[string(w.Label)] {
			seen[string(w.Label)] = true
			fmt.Println("  ", w)
		}
	}
}
