// The Set.add example from the paper's introduction, run as a live
// program on the rr instrumentation substrate:
//
//	go run ./examples/setvector
//
// Set.add is race-free — the underlying Vector's contains and add are
// individually synchronized — yet not atomic: another thread can insert
// the same element between the membership check and the insert. Velodrome
// observes two threads adding concurrently and reports exactly this, with
// an error graph like the one in Section 5 of the paper.
package main

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/dot"
	"repro/internal/rr"
)

// set is a Set backed by a synchronized vector, as in the paper.
type set struct {
	lock  *rr.Mutex
	elems *rr.Ref[[]int64]
}

func newSet(rt *rr.Runtime) *set {
	return &set{
		lock:  rt.NewMutex("Vector.lock"),
		elems: rr.NewRef[[]int64](rt, "Vector.elems"),
	}
}

// contains is Vector.contains: synchronized.
func (s *set) contains(t *rr.Thread, x int64) bool {
	found := false
	s.lock.With(t, func() {
		for _, e := range s.elems.Load(t) {
			if e == x {
				found = true
			}
		}
	})
	return found
}

// add is Vector.add: synchronized.
func (s *set) vectorAdd(t *rr.Thread, x int64) {
	s.lock.With(t, func() {
		s.elems.Update(t, func(es []int64) []int64 { return append(es, x) })
	})
}

// setAdd is Set.add: atomic by intent, not by construction.
func (s *set) setAdd(t *rr.Thread, x int64) {
	t.Atomic("Set.add", func() {
		if !s.contains(t, x) {
			t.Yield() // invite the scheduler in, like a JIT-compiled gap
			s.vectorAdd(t, x)
		}
	})
}

func main() {
	for seed := int64(1); ; seed++ {
		velo := rr.NewVelodrome(core.Options{})
		var final []int64
		rr.Run(rr.Options{Seed: seed, Backend: velo}, func(t *rr.Thread) {
			s := newSet(t.Runtime())
			h1 := t.Fork(func(c *rr.Thread) { s.setAdd(c, 7) })
			h2 := t.Fork(func(c *rr.Thread) { s.setAdd(c, 7) })
			t.Join(h1)
			t.Join(h2)
			final = s.elems.Load(t)
		})
		dup := len(final) > 1
		if len(velo.Warnings()) == 0 {
			fmt.Printf("seed %d: schedule was benign (set=%v), retrying...\n", seed, final)
			continue
		}
		w := velo.Warnings()[0]
		fmt.Printf("seed %d: duplicate inserted=%v, set=%v\n\n", seed, dup, final)
		fmt.Println(w)
		fmt.Printf("\nWarning: %s is not atomic — error graph (dot):\n\n", w.Method())
		fmt.Println(dot.Render(w))
		return
	}
}
