// Spam emits a high-volume trace: two goroutines hammer a shared
// variable long enough to overflow any pipe buffer between the
// instrumented program and its consumer. Tests use it to kill the
// consumer mid-stream and assert the producer fails loudly instead of
// exiting 0 over a truncated trace.
package main

import "sync"

var shared int

func hammer() {
	for i := 0; i < 20000; i++ {
		h := shared
		shared = h + 1
	}
}

func main() {
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		hammer()
	}()
	go func() {
		defer wg.Done()
		hammer()
	}()
	wg.Wait()
}
