// Badannot is a lint fixture: it type-checks fine but every //velo:
// annotation in it is ill-formed, so veloinstr -analyze must exit 1
// listing each one.
package main

//velo:atomicc
func typo() {}

//velo:atomic two words
func badLabel() {}

var counter int //velo:atomic

func main() {
	//velo:atomic
	typo()
	badLabel()
	counter++
}
