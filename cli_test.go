package repro_test

import (
	"bufio"
	"encoding/json"
	"flag"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"repro/internal/span"
)

// -update-velovet rewrites the testdata/velovet golden files from the
// current velovet output instead of diffing against them.
var updateVelovet = flag.Bool("update-velovet", false, "rewrite testdata/velovet golden files")

// buildTools compiles every command once per test binary.
var buildOnce sync.Once
var toolDir string
var buildErr error

func tools(t *testing.T) string {
	t.Helper()
	buildOnce.Do(func() {
		dir, err := os.MkdirTemp("", "velotools")
		if err != nil {
			buildErr = err
			return
		}
		toolDir = dir
		for _, cmd := range []string{"velodrome", "velobench", "tracecheck", "veloinstr", "velodromed", "velovet", "veloload"} {
			out, err := exec.Command("go", "build", "-o", filepath.Join(dir, cmd), "./cmd/"+cmd).CombinedOutput()
			if err != nil {
				buildErr = err
				t.Logf("build %s: %s", cmd, out)
				return
			}
		}
	})
	if buildErr != nil {
		t.Fatalf("building tools: %v", buildErr)
	}
	return toolDir
}

func runTool(t *testing.T, name string, args ...string) (string, int) {
	t.Helper()
	cmd := exec.Command(filepath.Join(tools(t), name), args...)
	out, err := cmd.CombinedOutput()
	code := 0
	if ee, ok := err.(*exec.ExitError); ok {
		code = ee.ExitCode()
	} else if err != nil {
		t.Fatalf("%s %v: %v", name, args, err)
	}
	return string(out), code
}

func TestCLIVelodromeList(t *testing.T) {
	out, code := runTool(t, "velodrome", "-list")
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	for _, w := range []string{"elevator", "jigsaw", "raja"} {
		if !strings.Contains(out, w) {
			t.Errorf("missing %s in listing", w)
		}
	}
}

func TestCLIVelodromeRun(t *testing.T) {
	out, code := runTool(t, "velodrome", "-workload", "philo", "-stats")
	if code != 0 {
		t.Fatalf("exit %d:\n%s", code, out)
	}
	for _, want := range []string{"velodrome:", "Table.recordMeal", "graph: allocated="} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
}

func TestCLIVelodromeBackends(t *testing.T) {
	for _, be := range []string{"atomizer", "eraser", "hb", "fasttrack", "empty"} {
		out, code := runTool(t, "velodrome", "-workload", "multiset", "-backend", be)
		if code != 0 {
			t.Errorf("backend %s: exit %d:\n%s", be, code, out)
		}
	}
	if _, code := runTool(t, "velodrome", "-workload", "nope"); code != 2 {
		t.Error("unknown workload should exit 2")
	}
	if _, code := runTool(t, "velodrome", "-workload", "philo", "-backend", "bogus"); code != 2 {
		t.Error("unknown backend should exit 2")
	}
}

func TestCLIRecordAndCheck(t *testing.T) {
	dir := t.TempDir()
	for _, name := range []string{"t.txt", "t.bin"} {
		path := filepath.Join(dir, name)
		out, code := runTool(t, "velodrome", "-workload", "raja", "-record", path)
		if code != 0 {
			t.Fatalf("record: exit %d:\n%s", code, out)
		}
		out, code = runTool(t, "tracecheck", path)
		if code != 0 {
			t.Fatalf("%s: raja must be serializable; exit %d:\n%s", name, code, out)
		}
		if !strings.Contains(out, "serializable") {
			t.Errorf("unexpected output:\n%s", out)
		}
	}
	// A violating workload round-trips to exit status 1.
	path := filepath.Join(dir, "bad.bin")
	runTool(t, "velodrome", "-workload", "multiset", "-record", path)
	out, code := runTool(t, "tracecheck", "-q", path)
	if code != 1 {
		t.Fatalf("multiset trace must be non-serializable; exit %d:\n%s", code, out)
	}
}

func TestCLITracecheckCorpus(t *testing.T) {
	out, code := runTool(t, "tracecheck", "testdata/flag_handoff.txt")
	if code != 0 || !strings.Contains(out, "serializable") {
		t.Fatalf("exit %d:\n%s", code, out)
	}
	out, code = runTool(t, "tracecheck", "testdata/setadd.txt")
	if code != 1 || !strings.Contains(out, "Set.add") {
		t.Fatalf("exit %d:\n%s", code, out)
	}
	if _, code := runTool(t, "tracecheck", "no-such-file"); code != 2 {
		t.Error("missing file should exit 2")
	}
}

func TestCLIVelodromeJSONAndDot(t *testing.T) {
	out, code := runTool(t, "velodrome", "-workload", "multiset", "-json")
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	if !strings.Contains(out, `"method":"Multiset.`) {
		t.Errorf("missing JSON warnings:\n%s", out)
	}
	dotPath := filepath.Join(t.TempDir(), "g.dot")
	out, code = runTool(t, "velodrome", "-workload", "multiset", "-dot", dotPath)
	if code != 0 {
		t.Fatalf("exit %d:\n%s", code, out)
	}
	data, err := os.ReadFile(dotPath)
	if err != nil || !strings.Contains(string(data), "digraph velodrome") {
		t.Errorf("dot output missing: %v", err)
	}
}

func TestCLIVelodromeDescribe(t *testing.T) {
	out, code := runTool(t, "velodrome", "-workload", "colt", "-describe")
	if code != 0 || !strings.Contains(out, "non-atomic(rare)") {
		t.Fatalf("exit %d:\n%s", code, out)
	}
}

func TestCLIVelobench(t *testing.T) {
	out, code := runTool(t, "velobench", "-table", "2", "-seeds", "1")
	if code != 0 {
		t.Fatalf("exit %d:\n%s", code, out)
	}
	for _, want := range []string{"Table 2", "jigsaw", "0 / 0"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q:\n%s", want, out)
		}
	}
	if _, code := runTool(t, "velobench"); code != 2 {
		t.Error("no arguments should exit 2 with usage")
	}
	if _, code := runTool(t, "velobench", "-table", "2", "-seeds", "x"); code != 2 {
		t.Error("bad seeds should exit 2")
	}
}

// TestCLIStatsJSONSnapshot checks that -stats -json replaces the human
// graph table with one machine-readable obs snapshot object after the
// JSON warning lines.
func TestCLIStatsJSONSnapshot(t *testing.T) {
	out, code := runTool(t, "velodrome", "-workload", "multiset", "-stats", "-json")
	if code != 0 {
		t.Fatalf("exit %d:\n%s", code, out)
	}
	if strings.Contains(out, "graph: allocated=") {
		t.Errorf("-json must suppress the human stats table:\n%s", out)
	}
	dec := json.NewDecoder(strings.NewReader(out))
	var last map[string]json.RawMessage
	values := 0
	for dec.More() {
		if err := dec.Decode(&last); err != nil {
			t.Fatalf("value %d: %v\n%s", values, err, out)
		}
		values++
	}
	if values < 2 {
		t.Fatalf("want warning lines plus a snapshot, got %d JSON values", values)
	}
	for _, key := range []string{"counters", "gauges", "histograms"} {
		if _, ok := last[key]; !ok {
			t.Errorf("snapshot missing %q:\n%s", key, out)
		}
	}
	var counters map[string]int64
	if err := json.Unmarshal(last["counters"], &counters); err != nil {
		t.Fatal(err)
	}
	if counters["velodrome_warnings_total"] == 0 {
		t.Errorf("multiset should have recorded warnings: %v", counters)
	}
	if counters["rr_events_total"] == 0 {
		t.Errorf("scheduler events should be counted: %v", counters)
	}
}

// TestCLIMetricsServe runs a workload big enough to outlast an HTTP
// round-trip and scrapes the live /metrics endpoint mid-run.
func TestCLIMetricsServe(t *testing.T) {
	cmd := exec.Command(filepath.Join(tools(t), "velodrome"),
		"-workload", "philo", "-scale", "2000", "-metrics-addr", "127.0.0.1:0")
	stderr, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stdout = nil
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer cmd.Wait()
	line, err := bufio.NewReader(stderr).ReadString('\n')
	if err != nil {
		t.Fatalf("reading announce line: %v", err)
	}
	i := strings.Index(line, "http://")
	if i < 0 {
		t.Fatalf("no address announced: %q", line)
	}
	base := strings.TrimSpace(line[i:])
	// The address is announced before the workload registers its
	// instruments, so poll until the series shows up rather than racing
	// the first scheduler step.
	var body []byte
	deadline := time.Now().Add(10 * time.Second)
	for {
		resp, err := http.Get(base + "/metrics")
		if err != nil {
			t.Fatalf("GET /metrics: %v", err)
		}
		body, _ = io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != 200 {
			t.Fatalf("status %d", resp.StatusCode)
		}
		if strings.Contains(string(body), "# TYPE rr_sched_steps_total counter") {
			break
		}
		if time.Now().After(deadline) {
			t.Errorf("rr_sched_steps_total never appeared; last exposition:\n%.500s", body)
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	if resp, err := http.Get(base + "/debug/pprof/cmdline"); err == nil {
		resp.Body.Close()
		if resp.StatusCode != 200 {
			t.Errorf("pprof status %d", resp.StatusCode)
		}
	} else {
		t.Errorf("GET /debug/pprof/cmdline: %v", err)
	}
	go io.Copy(io.Discard, stderr)
}

// TestCLIProfileFlag covers -profile on velodrome and -obs-json plus
// -profile on tracecheck (whose non-zero exits bypass defers).
func TestCLIProfileFlag(t *testing.T) {
	dir := t.TempDir()
	prof := filepath.Join(dir, "cpu.pprof")
	out, code := runTool(t, "velodrome", "-workload", "philo", "-profile", "cpu", "-profile-out", prof)
	if code != 0 {
		t.Fatalf("exit %d:\n%s", code, out)
	}
	if fi, err := os.Stat(prof); err != nil || fi.Size() == 0 {
		t.Errorf("cpu profile not written: %v", err)
	}

	prof2 := filepath.Join(dir, "mem.pprof")
	out, code = runTool(t, "tracecheck", "-q", "-obs-json", "-profile", "mem", "-profile-out", prof2, "testdata/setadd.txt")
	if code != 1 {
		t.Fatalf("setadd must stay non-serializable; exit %d:\n%s", code, out)
	}
	if fi, err := os.Stat(prof2); err != nil || fi.Size() == 0 {
		t.Errorf("mem profile not written on exit-1 path: %v", err)
	}
	if !strings.Contains(out, `"velodrome_warnings_total":3`) {
		t.Errorf("-obs-json snapshot missing:\n%s", out)
	}
}

// TestCLIVelobenchObsOut checks the -replay side artifact: a JSON
// document of per-event-kind latency quantiles.
func TestCLIVelobenchObsOut(t *testing.T) {
	path := filepath.Join(t.TempDir(), "obs.json")
	out, code := runTool(t, "velobench", "-replay", "-seeds", "1", "-obs-out", path)
	if code != 0 {
		t.Fatalf("exit %d:\n%s", code, out)
	}
	if !strings.Contains(out, "wrote per-event-kind latency quantiles") {
		t.Errorf("missing obs-out notice:\n%s", out)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var rep struct {
		Workloads []struct {
			Name  string `json:"name"`
			Kinds []struct {
				Kind  string  `json:"kind"`
				Count int64   `json:"count"`
				P99Ns float64 `json:"p99_ns"`
			} `json:"kinds"`
		} `json:"workloads"`
	}
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatalf("BENCH_obs.json malformed: %v", err)
	}
	if len(rep.Workloads) < 10 {
		t.Fatalf("want all workloads, got %d", len(rep.Workloads))
	}
	for _, w := range rep.Workloads {
		if len(w.Kinds) == 0 {
			t.Errorf("%s: no kind summaries", w.Name)
		}
	}
}

func TestCLIVelodromeParallel(t *testing.T) {
	out, code := runTool(t, "velodrome", "-workload", "raja", "-goroutines")
	if code != 0 {
		t.Fatalf("exit %d:\n%s", code, out)
	}
	if !strings.Contains(out, "velodrome: 0 warnings") {
		t.Errorf("raja under real goroutines must stay clean:\n%s", out)
	}
}

func TestCLIVelodromePipeline(t *testing.T) {
	serial, code := runTool(t, "velodrome", "-workload", "elevator", "-stats")
	if code != 0 {
		t.Fatalf("serial exit %d:\n%s", code, serial)
	}
	par, code := runTool(t, "velodrome", "-workload", "elevator", "-stats", "-parallel", "4")
	if code != 0 {
		t.Fatalf("parallel exit %d:\n%s", code, par)
	}
	if par != serial {
		t.Errorf("-parallel 4 output differs from serial:\n--- serial ---\n%s\n--- parallel ---\n%s", serial, par)
	}
}

// runToolStdin is runTool with the contents of a file piped to stdin.
func runToolStdin(t *testing.T, stdinPath, name string, args ...string) (string, int) {
	t.Helper()
	f, err := os.Open(stdinPath)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	cmd := exec.Command(filepath.Join(tools(t), name), args...)
	cmd.Stdin = f
	out, err := cmd.CombinedOutput()
	code := 0
	if ee, ok := err.(*exec.ExitError); ok {
		code = ee.ExitCode()
	} else if err != nil {
		t.Fatalf("%s %v: %v", name, args, err)
	}
	return string(out), code
}

// TestCLITracecheckEmptyInput is the regression for the silent-success
// hole: an empty stream (crashed producer, misdirected pipe) must be an
// input error, not exit 0 with "serializable".
func TestCLITracecheckEmptyInput(t *testing.T) {
	out, code := runToolStdin(t, os.DevNull, "tracecheck", "-in", "-")
	if code != 2 {
		t.Fatalf("empty stdin must exit 2, got %d:\n%s", code, out)
	}
	if !strings.Contains(out, "empty trace") {
		t.Errorf("missing empty-trace diagnostic:\n%s", out)
	}
	// A comment-only trace is just as empty.
	p := filepath.Join(t.TempDir(), "comments.txt")
	if err := os.WriteFile(p, []byte("# velo events emitted=0 pruned=0\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if out, code := runTool(t, "tracecheck", p); code != 2 || !strings.Contains(out, "empty trace") {
		t.Errorf("comment-only trace: exit %d:\n%s", code, out)
	}
}

// TestCLITracecheckTruncatedMagic checks that a binary trace cut inside
// its 4-byte magic is reported as a format-level error naming the byte
// offset, not as a "line 1" text parse error.
func TestCLITracecheckTruncatedMagic(t *testing.T) {
	p := filepath.Join(t.TempDir(), "stub.bin")
	if err := os.WriteFile(p, []byte("VT"), 0o644); err != nil {
		t.Fatal(err)
	}
	out, code := runTool(t, "tracecheck", p)
	if code != 2 {
		t.Fatalf("truncated magic must exit 2, got %d:\n%s", code, out)
	}
	if !strings.Contains(out, "truncated binary trace") || !strings.Contains(out, "byte offset 2") {
		t.Errorf("missing format-level diagnostic:\n%s", out)
	}
	if strings.Contains(out, "line 1") {
		t.Errorf("must not surface as a text parse error:\n%s", out)
	}
}

// startVelodromed launches the daemon on an ephemeral port and returns
// its address and a drain func asserting a clean SIGTERM shutdown.
func startVelodromed(t *testing.T, extraArgs ...string) (string, func()) {
	t.Helper()
	args := append([]string{"-listen", "127.0.0.1:0"}, extraArgs...)
	cmd := exec.Command(filepath.Join(tools(t), "velodromed"), args...)
	stderr, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	// The daemon logs via slog; scan for the structured listen record
	// (other records, e.g. the metrics announce, may precede it).
	br := bufio.NewReader(stderr)
	var addr string
	for addr == "" {
		line, err := br.ReadString('\n')
		if err != nil {
			t.Fatalf("reading announce line: %v", err)
		}
		if !strings.Contains(line, "msg=listening") {
			continue
		}
		i := strings.Index(line, "addr=")
		if i < 0 {
			t.Fatalf("listen record without addr attr: %q", line)
		}
		addr = strings.TrimSpace(line[i+len("addr="):])
		if j := strings.IndexByte(addr, ' '); j >= 0 {
			addr = addr[:j]
		}
	}
	go io.Copy(io.Discard, br)
	return addr, func() {
		cmd.Process.Signal(syscall.SIGTERM)
		if err := cmd.Wait(); err != nil {
			t.Errorf("velodromed did not drain cleanly: %v", err)
		}
	}
}

// TestCLIVelodromedRoundTrip covers the daemon end to end: tracecheck
// -server gets per-trace verdicts with the right exit codes, empty
// streams come back malformed, and SIGTERM drains cleanly.
func TestCLIVelodromedRoundTrip(t *testing.T) {
	addr, drain := startVelodromed(t)
	defer drain()

	out, code := runTool(t, "tracecheck", "-server", addr, "testdata/flag_handoff.txt")
	if code != 0 || !strings.Contains(out, "serializable") || !strings.Contains(out, addr) {
		t.Fatalf("clean trace via daemon: exit %d:\n%s", code, out)
	}
	// The verdict line names the daemon-side session and its duration.
	if !strings.Contains(out, "session s") || !strings.Contains(out, "ms)") {
		t.Fatalf("verdict line missing session id/duration:\n%s", out)
	}
	out, code = runTool(t, "tracecheck", "-server", addr, "testdata/setadd.txt")
	if code != 1 || !strings.Contains(out, "NOT serializable") || !strings.Contains(out, "Set.add") {
		t.Fatalf("buggy trace via daemon: exit %d:\n%s", code, out)
	}
	// -explain requests forensics for the session: the relayed verdict
	// carries a provenance report per warning.
	out, code = runTool(t, "tracecheck", "-server", addr, "-explain", "testdata/setadd.txt")
	if code != 1 || !strings.Contains(out, "provenance:") || !strings.Contains(out, "cycle edges:") {
		t.Fatalf("-explain via daemon: exit %d:\n%s", code, out)
	}
	out, code = runToolStdin(t, os.DevNull, "tracecheck", "-server", addr, "-in", "-")
	if code != 2 || !strings.Contains(out, "empty trace") {
		t.Fatalf("empty stream via daemon: exit %d:\n%s", code, out)
	}
	// The basic engine is selectable per session.
	out, code = runTool(t, "tracecheck", "-server", addr, "-engine", "basic", "testdata/setadd.txt")
	if code != 1 || !strings.Contains(out, "checked by basic") {
		t.Fatalf("basic engine via daemon: exit %d:\n%s", code, out)
	}
}

// TestCLITracecheckExplain covers the local forensics path: -explain
// prints a provenance report per warning and -forensics -dot writes the
// provenance rendering with trace spans and access pairs.
func TestCLITracecheckExplain(t *testing.T) {
	out, code := runTool(t, "tracecheck", "-explain", "testdata/setadd.txt")
	if code != 1 {
		t.Fatalf("setadd must stay non-serializable; exit %d:\n%s", code, out)
	}
	for _, want := range []string{"provenance:", "transactions:", "cycle edges:", "flight recorder", "← blamed"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in -explain output:\n%s", want, out)
		}
	}
	dotPath := filepath.Join(t.TempDir(), "g.dot")
	out, code = runTool(t, "tracecheck", "-q", "-forensics", "-dot", dotPath, "testdata/setadd.txt")
	if code != 1 {
		t.Fatalf("exit %d:\n%s", code, out)
	}
	data, err := os.ReadFile(dotPath)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "digraph velodrome") || !strings.Contains(string(data), "ops ") {
		t.Errorf("forensic dot rendering missing trace spans:\n%s", data)
	}
}

// TestCLIVelodromedDebugEndpoint scrapes the daemon's live /debug/velo
// session listing in both renderings.
func TestCLIVelodromedDebugEndpoint(t *testing.T) {
	cmd := exec.Command(filepath.Join(tools(t), "velodromed"),
		"-listen", "127.0.0.1:0", "-metrics-addr", "127.0.0.1:0")
	stderr, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		cmd.Process.Signal(syscall.SIGTERM)
		if err := cmd.Wait(); err != nil {
			t.Errorf("velodromed did not drain cleanly: %v", err)
		}
	}()
	// Wait for the trace listener too: the signal handler is installed
	// after it, and the deferred SIGTERM must not beat it.
	br := bufio.NewReader(stderr)
	var base string
	listening := false
	for base == "" || !listening {
		line, err := br.ReadString('\n')
		if err != nil {
			t.Fatalf("reading metrics announce: %v", err)
		}
		if i := strings.Index(line, "url=http://"); i >= 0 {
			base = strings.TrimSpace(line[i+len("url="):])
			if j := strings.IndexByte(base, ' '); j >= 0 {
				base = base[:j]
			}
		}
		if strings.Contains(line, "msg=listening") {
			listening = true
		}
	}
	go io.Copy(io.Discard, br)

	resp, err := http.Get(base + "/debug/velo")
	if err != nil {
		t.Fatalf("GET /debug/velo: %v", err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 || !strings.Contains(string(body), "velodromed sessions") {
		t.Errorf("HTML listing: status %d body:\n%s", resp.StatusCode, body)
	}
	resp, err = http.Get(base + "/debug/velo?format=json")
	if err != nil {
		t.Fatalf("GET /debug/velo?format=json: %v", err)
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	var state struct {
		Active      int `json:"active"`
		MaxSessions int `json:"maxSessions"`
	}
	if err := json.Unmarshal(body, &state); err != nil {
		t.Fatalf("JSON listing did not decode: %v\n%s", err, body)
	}
	if state.MaxSessions == 0 {
		t.Errorf("maxSessions missing from %s", body)
	}
}

// TestCLIVeloinstrRunServer streams an instrumented program's trace
// straight to the daemon and relays its verdict.
func TestCLIVeloinstrRunServer(t *testing.T) {
	addr, drain := startVelodromed(t)
	defer drain()
	out, code := runTool(t, "veloinstr", "-run", "-server", addr, "examples/instr/bankbug")
	if code != 1 {
		t.Fatalf("bankbug via daemon must exit 1, got %d:\n%s", code, out)
	}
	for _, want := range []string{"NOT serializable", "withdrawAll", "checked by optimized at " + addr, "velo events emitted="} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
	// -server without -run is a usage error.
	if _, code := runTool(t, "veloinstr", "-server", addr, "examples/instr/bankbug"); code != 2 {
		t.Errorf("-server without -run should exit 2, got %d", code)
	}
}

// TestCLIVeloinstrAnalyze checks the classification table: the bank
// example must show a nonzero pruned set with the right classes, and
// the pass diagnostics must flag the seeded split transaction (which
// makes -analyze exit 1, vet-style).
func TestCLIVeloinstrAnalyze(t *testing.T) {
	out, code := runTool(t, "veloinstr", "-analyze", "examples/instr/bankbug")
	if code != 1 {
		t.Fatalf("bankbug has a velo-split finding, want exit 1; exit %d:\n%s", code, out)
	}
	for _, want := range []string{
		"1 shared, 1 thread-local, 2 lock-protected",
		"balance", "pruned (held: mu)",
		"openingBalance", "thread-local",
		"atomic blocks: [withdrawAll]",
		"[velo-split]",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
	// The fixed variant has no findings (suggestions don't count).
	out, code = runTool(t, "veloinstr", "-analyze", "examples/instr/bankfixed")
	if code != 0 {
		t.Fatalf("bankfixed must be finding-free; exit %d:\n%s", code, out)
	}
}

// TestCLIVeloinstrAnalyzeJSON checks the machine-readable report: the
// velovet diagnostic schema wrapped with the classification rows.
func TestCLIVeloinstrAnalyzeJSON(t *testing.T) {
	out, code := runTool(t, "veloinstr", "-analyze", "-json", "examples/instr/auditbug")
	if code != 1 {
		t.Fatalf("auditbug findings must exit 1; exit %d:\n%s", code, out)
	}
	var rep struct {
		Package string `json:"package"`
		Vars    []struct {
			Name      string `json:"name"`
			Class     string `json:"class"`
			Lock      string `json:"lock"`
			Interproc bool   `json:"interprocedural"`
		} `json:"vars"`
		Diagnostics []struct {
			Pos      string `json:"pos"`
			Severity string `json:"severity"`
			Code     string `json:"code"`
			Message  string `json:"message"`
		} `json:"diagnostics"`
	}
	if err := json.Unmarshal([]byte(out), &rep); err != nil {
		t.Fatalf("report is not JSON: %v\n%s", err, out)
	}
	ledger := false
	for _, v := range rep.Vars {
		if v.Name == "ledger" {
			ledger = true
			if v.Class != "lock-protected" || v.Lock != "mu" || !v.Interproc {
				t.Errorf("ledger must be interprocedurally lock-protected: %+v", v)
			}
		}
	}
	if !ledger {
		t.Errorf("ledger row missing: %s", out)
	}
	codes := map[string]bool{}
	for _, d := range rep.Diagnostics {
		codes[d.Code] = true
		if d.Pos == "" || d.Severity == "" || d.Message == "" {
			t.Errorf("incomplete diagnostic: %+v", d)
		}
	}
	for _, want := range []string{"velo-split", "velo-interproc"} {
		if !codes[want] {
			t.Errorf("missing %s diagnostic in %v", want, codes)
		}
	}
	// -json without -analyze is a usage error.
	if _, code := runTool(t, "veloinstr", "-json", "examples/instr/auditbug"); code != 2 {
		t.Errorf("-json without -analyze should exit 2, got %d", code)
	}
}

// TestCLIVeloinstrIntra checks that -intra disables the interprocedural
// entry-lock inference: the audit ledger (mutated only by helpers that
// never lock) degrades from lock-protected to shared.
func TestCLIVeloinstrIntra(t *testing.T) {
	out, _ := runTool(t, "veloinstr", "-analyze", "examples/instr/auditfixed")
	if !strings.Contains(out, "pruned (held: mu, interprocedural)") {
		t.Fatalf("default analysis must prove ledger lock-protected:\n%s", out)
	}
	outIntra, _ := runTool(t, "veloinstr", "-analyze", "-intra", "examples/instr/auditfixed")
	if strings.Contains(outIntra, "interprocedural") {
		t.Errorf("-intra must not report interprocedural facts:\n%s", outIntra)
	}
	if !strings.Contains(outIntra, "2 shared") {
		t.Errorf("-intra must classify ledger shared:\n%s", outIntra)
	}
}

// TestCLIVeloinstrAnnotationLint checks -analyze's well-formedness
// pass over //velo: directives on a fixture where every one is bad.
func TestCLIVeloinstrAnnotationLint(t *testing.T) {
	out, code := runTool(t, "veloinstr", "-analyze", "testdata/instr/badannot")
	if code != 1 {
		t.Fatalf("ill-formed annotations must exit 1; exit %d:\n%s", code, out)
	}
	for _, want := range []string{
		"unknown directive //velo:atomicc",
		"malformed //velo:atomic label",
		"must be in the doc comment of a function declaration",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
	// Outside -analyze, bad annotations are an input error (exit 2).
	if _, code := runTool(t, "veloinstr", "testdata/instr/badannot"); code != 2 {
		t.Errorf("instrumenting badannot should exit 2, got %d", code)
	}
}

// TestCLIVeloinstrRunBankbug is the headline end-to-end path: the
// seeded atomicity bug must be reported by every registered engine with
// the serial oracle agreeing, and the saved trace must round-trip
// through tracecheck's new stdin mode with the same verdict.
func TestCLIVeloinstrRunBankbug(t *testing.T) {
	tracePath := filepath.Join(t.TempDir(), "bankbug.trace")
	out, code := runTool(t, "veloinstr", "-run", "-trace", tracePath, "examples/instr/bankbug")
	if code != 1 {
		t.Fatalf("bankbug must be non-serializable; exit %d:\n%s", code, out)
	}
	for _, want := range []string{
		"NOT serializable",
		"optimized, basic, aerodrome engines and serial oracle agree",
		"withdrawAll",
		"is not atomic",
		"pruned",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
	out, code = runToolStdin(t, tracePath, "tracecheck", "-q", "-in", "-")
	if code != 1 || !strings.Contains(out, "NOT serializable") {
		t.Fatalf("tracecheck -in - on the saved trace: exit %d:\n%s", code, out)
	}
}

func TestCLIVeloinstrRunFixed(t *testing.T) {
	out, code := runTool(t, "veloinstr", "-run", "examples/instr/bankfixed")
	if code != 0 {
		t.Fatalf("bankfixed must be serializable; exit %d:\n%s", code, out)
	}
	if !strings.Contains(out, "serializable: optimized, basic, aerodrome engines agree, serial oracle confirms") {
		t.Errorf("missing agreement line:\n%s", out)
	}
}

// warningLabels extracts the set of atomicity-violation labels (the
// "<label>@" prefix of each warning line) from a -run transcript, so
// differential tests compare which functions were blamed rather than
// operation indices, which legitimately shift when pruning changes the
// trace.
func warningLabels(out string) map[string]bool {
	labels := map[string]bool{}
	for _, line := range strings.Split(out, "\n") {
		rest, ok := strings.CutPrefix(line, "warning: ")
		if !ok {
			continue
		}
		if label, _, ok := strings.Cut(rest, "@"); ok {
			labels[label] = true
		}
	}
	return labels
}

// TestCLIVeloinstrPruneSound is the empirical soundness check for the
// redundant-event optimization: on every example — including the audit
// pair, where the interprocedural fixpoint does the pruning — the
// instrumented run with and without pruning must yield the same verdict
// and blame the same atomic functions.
func TestCLIVeloinstrPruneSound(t *testing.T) {
	for _, ex := range []string{"bankbug", "bankfixed", "counter", "auditbug", "auditfixed"} {
		dir := "examples/instr/" + ex
		outP, codeP := runTool(t, "veloinstr", "-run", dir)
		outN, codeN := runTool(t, "veloinstr", "-run", "-noprune", dir)
		if codeP == 2 || codeN == 2 {
			t.Fatalf("%s: infrastructure error\npruned:\n%s\nnoprune:\n%s", ex, outP, outN)
		}
		if codeP != codeN {
			t.Errorf("%s: pruning changed the verdict: pruned exit %d, noprune exit %d\npruned:\n%s\nnoprune:\n%s",
				ex, codeP, codeN, outP, outN)
		}
		if !strings.Contains(outN, " 0 pruned)") {
			t.Errorf("%s: -noprune must not prune:\n%s", ex, outN)
		}
		lp, ln := warningLabels(outP), warningLabels(outN)
		if len(lp) != len(ln) {
			t.Errorf("%s: pruning changed the blamed set: %v vs %v", ex, lp, ln)
		}
		for l := range lp {
			if !ln[l] {
				t.Errorf("%s: pruned run blames %s, noprune run does not", ex, l)
			}
		}
	}
}

// TestCLIVeloinstrRunAudit is the dynamic half of the interprocedural
// pruning story: auditbug's violation must still be caught with the
// ledger accesses pruned (the lock events alone carry the cycle), and
// auditfixed must stay clean.
func TestCLIVeloinstrRunAudit(t *testing.T) {
	out, code := runTool(t, "veloinstr", "-run", "examples/instr/auditbug")
	if code != 1 {
		t.Fatalf("auditbug must be non-serializable; exit %d:\n%s", code, out)
	}
	for _, want := range []string{"NOT serializable", "reconcile", "is not atomic"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
	out, code = runTool(t, "veloinstr", "-run", "examples/instr/auditfixed")
	if code != 0 {
		t.Fatalf("auditfixed must be serializable; exit %d:\n%s", code, out)
	}
}

// TestCLITracecheckTraceOut records a filter-heavy workload, checks it
// locally with -trace-out, and asserts the exported file is valid
// Chrome trace-event JSON with the pipeline's decode → check →
// filter/graph nesting. -trace-out with -server is a usage error: the
// daemon traces its own sessions.
func TestCLITracecheckTraceOut(t *testing.T) {
	dir := t.TempDir()
	tracePath := filepath.Join(dir, "multiset.bin")
	if out, code := runTool(t, "velodrome", "-workload", "multiset", "-record", tracePath); code != 0 {
		t.Fatalf("record: exit %d:\n%s", code, out)
	}
	outPath := filepath.Join(dir, "pipeline.trace.json")
	out, code := runTool(t, "tracecheck", "-q", "-trace-out", outPath, tracePath)
	if code != 1 {
		t.Fatalf("multiset must stay non-serializable; exit %d:\n%s", code, out)
	}
	if !strings.Contains(out, "wrote pipeline trace to "+outPath) {
		t.Errorf("missing trace-out notice:\n%s", out)
	}
	data, err := os.ReadFile(outPath)
	if err != nil {
		t.Fatal(err)
	}
	n, err := span.ValidateChrome(data)
	if err != nil || n == 0 {
		t.Fatalf("exported trace invalid (%d spans): %v", n, err)
	}
	for _, nest := range [][2]string{
		{"decode", "session"},
		{"check", "session"},
		{"filter", "check"},
		{"graph", "check"},
	} {
		if !span.FindSpan(data, nest[0], nest[1]) {
			t.Errorf("trace missing %q nested under %q", nest[0], nest[1])
		}
	}
	if out, code := runTool(t, "tracecheck", "-trace-out", outPath, "-server", "127.0.0.1:1", tracePath); code != 2 ||
		!strings.Contains(out, "-trace-out only applies to local checking") {
		t.Errorf("-trace-out with -server: exit %d:\n%s", code, out)
	}
}

// TestCLIVelodromedSessionHistory drives the daemon's whole
// observability surface over HTTP: velo_build_info on /metrics, the
// verdict history on /api/sessions (list, per-id, 404), the /debug/velo
// recent table with its per-session drill-down, the per-stage span
// metrics in verdicts, and the -trace-dir Chrome export.
func TestCLIVelodromedSessionHistory(t *testing.T) {
	traceDir := t.TempDir()
	cmd := exec.Command(filepath.Join(tools(t), "velodromed"),
		"-listen", "127.0.0.1:0", "-metrics-addr", "127.0.0.1:0", "-trace-dir", traceDir)
	stderr, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		cmd.Process.Signal(syscall.SIGTERM)
		if err := cmd.Wait(); err != nil {
			t.Errorf("velodromed did not drain cleanly: %v", err)
		}
	}()
	// Collect both announces: the metrics URL and the trace listener.
	br := bufio.NewReader(stderr)
	var base, addr string
	for base == "" || addr == "" {
		line, err := br.ReadString('\n')
		if err != nil {
			t.Fatalf("reading announces: %v", err)
		}
		if i := strings.Index(line, "url=http://"); i >= 0 {
			base = strings.TrimSpace(line[i+len("url="):])
			if j := strings.IndexByte(base, ' '); j >= 0 {
				base = base[:j]
			}
		}
		if strings.Contains(line, "msg=listening") {
			if i := strings.Index(line, "addr="); i >= 0 {
				addr = strings.TrimSpace(line[i+len("addr="):])
				if j := strings.IndexByte(addr, ' '); j >= 0 {
					addr = addr[:j]
				}
			}
		}
	}
	go io.Copy(io.Discard, br)

	get := func(path string) (int, []byte) {
		t.Helper()
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, body
	}

	if _, body := get("/metrics"); !strings.Contains(string(body), "velo_build_info{") ||
		!strings.Contains(string(body), "velo_process_start_time_seconds") {
		t.Errorf("/metrics missing build info:\n%.800s", body)
	}

	// One forensics session: its history record must carry the warning
	// digest, span summary, provenance report and trace file.
	out, code := runTool(t, "tracecheck", "-server", addr, "-explain", "testdata/setadd.txt")
	if code != 1 {
		t.Fatalf("setadd via daemon: exit %d:\n%s", code, out)
	}

	code, body := get("/api/sessions")
	if code != 200 {
		t.Fatalf("/api/sessions: status %d", code)
	}
	var page struct {
		Total    int64 `json:"total"`
		Sessions []struct {
			Session      string `json:"session"`
			Serializable bool   `json:"serializable"`
			Warnings     []string
			Spans        *struct {
				Stages map[string]struct {
					Count int64 `json:"count"`
					Ns    int64 `json:"ns"`
				} `json:"stages"`
			} `json:"spans"`
			TraceFile string `json:"traceFile"`
		} `json:"sessions"`
	}
	if err := json.Unmarshal(body, &page); err != nil {
		t.Fatalf("session list: %v\n%s", err, body)
	}
	if page.Total != 1 || len(page.Sessions) != 1 {
		t.Fatalf("list %s, want exactly the one session", body)
	}
	rec := page.Sessions[0]
	if rec.Serializable || len(rec.Warnings) == 0 || !strings.Contains(rec.Warnings[0], "Set.add") {
		t.Errorf("record %+v, want a Set.add warning digest", rec)
	}
	if rec.Spans == nil || rec.Spans.Stages["decode"].Ns <= 0 || rec.Spans.Stages["graph"].Ns <= 0 {
		t.Errorf("record missing stage rollup: %s", body)
	}
	if code, body := get("/api/sessions/" + rec.Session); code != 200 ||
		!strings.Contains(string(body), `"reports"`) {
		t.Errorf("per-id record: status %d\n%s", code, body)
	}
	if code, _ := get("/api/sessions/s999"); code != 404 {
		t.Errorf("unknown session: status %d, want 404", code)
	}

	// The exported per-session timeline is valid Chrome trace JSON.
	if !strings.HasPrefix(rec.TraceFile, traceDir) {
		t.Fatalf("trace file %q not under -trace-dir %q", rec.TraceFile, traceDir)
	}
	data, err := os.ReadFile(rec.TraceFile)
	if err != nil {
		t.Fatal(err)
	}
	if n, err := span.ValidateChrome(data); err != nil || n == 0 {
		t.Fatalf("session trace invalid (%d spans): %v", n, err)
	}
	if !span.FindSpan(data, "decode", "session") || !span.FindSpan(data, "verdict", "session") {
		t.Errorf("session trace missing pipeline nesting:\n%s", data)
	}

	// The dashboard lists the session and drills into its warning + DOT.
	code, body = get("/debug/velo")
	if code != 200 || !strings.Contains(string(body), "?session="+rec.Session) {
		t.Errorf("dashboard missing recent session: status %d\n%s", code, body)
	}
	code, body = get("/debug/velo?session=" + rec.Session)
	if code != 200 {
		t.Fatalf("drill-down: status %d", code)
	}
	for _, want := range []string{rec.Session, "Set.add", "digraph velodrome", "decode", "graph"} {
		if !strings.Contains(string(body), want) {
			t.Errorf("drill-down missing %q:\n%s", want, body)
		}
	}
	if code, _ = get("/debug/velo?session=s999"); code != 404 {
		t.Errorf("drill-down for unknown session: status %d, want 404", code)
	}
}

// startVelodromedFull launches the daemon with the given extra flags and
// returns the process plus its trace address and metrics base URL. The
// caller owns shutdown (no drain func: crash tests signal it directly).
func startVelodromedFull(t *testing.T, extraArgs ...string) (*exec.Cmd, string, string) {
	t.Helper()
	args := append([]string{"-listen", "127.0.0.1:0", "-metrics-addr", "127.0.0.1:0"}, extraArgs...)
	cmd := exec.Command(filepath.Join(tools(t), "velodromed"), args...)
	stderr, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	br := bufio.NewReader(stderr)
	var base, addr string
	for base == "" || addr == "" {
		line, err := br.ReadString('\n')
		if err != nil {
			t.Fatalf("reading announces: %v", err)
		}
		if i := strings.Index(line, "url=http://"); i >= 0 {
			base = strings.TrimSpace(line[i+len("url="):])
			if j := strings.IndexByte(base, ' '); j >= 0 {
				base = base[:j]
			}
		}
		if strings.Contains(line, "msg=listening") {
			if i := strings.Index(line, "addr="); i >= 0 {
				addr = strings.TrimSpace(line[i+len("addr="):])
				if j := strings.IndexByte(addr, ' '); j >= 0 {
					addr = addr[:j]
				}
			}
		}
	}
	go io.Copy(io.Discard, br)
	return cmd, addr, base
}

// apiSessions fetches and decodes /api/sessions from a daemon's metrics
// endpoint.
func apiSessions(t *testing.T, base string) (int64, []map[string]json.RawMessage) {
	t.Helper()
	resp, err := http.Get(base + "/api/sessions?limit=1000")
	if err != nil {
		t.Fatalf("GET /api/sessions: %v", err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != 200 {
		t.Fatalf("/api/sessions: status %d\n%s", resp.StatusCode, body)
	}
	var page struct {
		Total    int64                        `json:"total"`
		Sessions []map[string]json.RawMessage `json:"sessions"`
	}
	if err := json.Unmarshal(body, &page); err != nil {
		t.Fatalf("/api/sessions did not decode: %v\n%s", err, body)
	}
	return page.Total, page.Sessions
}

// TestCLIVelodromedRestartDurability is the graceful half of the store's
// restart contract: verdicts served before a SIGTERM must be served by
// /api/sessions after a restart on the same store directory, and the
// restarted daemon must not reissue session ids clients may still hold.
func TestCLIVelodromedRestartDurability(t *testing.T) {
	dir := t.TempDir()
	cmd, addr, base := startVelodromedFull(t, "-store-dir", dir)

	var preIDs []string
	for i := 0; i < 3; i++ {
		out, code := runTool(t, "tracecheck", "-server", addr, "testdata/setadd.txt")
		if code != 1 {
			t.Fatalf("session %d: exit %d:\n%s", i, code, out)
		}
		j := strings.Index(out, "session s")
		if j < 0 {
			t.Fatalf("no session id in verdict line:\n%s", out)
		}
		id := out[j+len("session "):]
		if k := strings.IndexAny(id, " ,)"); k >= 0 {
			id = id[:k]
		}
		preIDs = append(preIDs, id)
	}
	cmd.Process.Signal(syscall.SIGTERM)
	if err := cmd.Wait(); err != nil {
		t.Fatalf("velodromed did not drain cleanly: %v", err)
	}

	cmd, addr, base = startVelodromedFull(t, "-store-dir", dir)
	defer func() {
		cmd.Process.Signal(syscall.SIGTERM)
		if err := cmd.Wait(); err != nil {
			t.Errorf("restarted velodromed did not drain cleanly: %v", err)
		}
	}()

	total, recs := apiSessions(t, base)
	if total != 3 || len(recs) != 3 {
		t.Fatalf("after restart: total=%d retained=%d, want the 3 pre-restart sessions", total, len(recs))
	}
	served := map[string]bool{}
	for _, rec := range recs {
		var id, status string
		json.Unmarshal(rec["session"], &id)
		json.Unmarshal(rec["status"], &status)
		if status != "ok" {
			t.Errorf("recovered record %s has status %q", id, status)
		}
		served[id] = true
	}
	for _, id := range preIDs {
		if !served[id] {
			t.Errorf("pre-restart session %s missing after restart (have %v)", id, served)
		}
	}

	// A new session must get a fresh id above everything recovered.
	out, code := runTool(t, "tracecheck", "-server", addr, "testdata/flag_handoff.txt")
	if code != 0 {
		t.Fatalf("post-restart session: exit %d:\n%s", code, out)
	}
	total, recs = apiSessions(t, base)
	if total != 4 {
		t.Errorf("post-restart total=%d, want 4", total)
	}
	ids := map[string]int{}
	for _, rec := range recs {
		var id string
		json.Unmarshal(rec["session"], &id)
		ids[id]++
	}
	for id, n := range ids {
		if n != 1 {
			t.Errorf("session id %s served %d times: restart reissued a live id", id, n)
		}
	}
}

// TestCLIVelodromedCrashDurability is the unclean half: SIGKILL the
// daemon mid-load and assert the restarted daemon serves every verdict a
// client saw before the kill — the store fsyncs each record before the
// verdict goes out — with at most in-flight sessions missing and nothing
// corrupted.
func TestCLIVelodromedCrashDurability(t *testing.T) {
	dir := t.TempDir()
	cmd, addr, _ := startVelodromedFull(t, "-store-dir", dir)

	// Phase 1: sessions whose verdicts the client has seen. These MUST
	// survive the kill.
	for i := 0; i < 4; i++ {
		if out, code := runTool(t, "tracecheck", "-server", addr, "testdata/setadd.txt"); code != 1 {
			t.Fatalf("session %d: exit %d:\n%s", i, code, out)
		}
	}
	// Phase 2: in-flight load at the moment of the kill. Outcomes don't
	// matter — these are the tail the store may legitimately lose.
	var inflight sync.WaitGroup
	for i := 0; i < 4; i++ {
		inflight.Add(1)
		go func() {
			defer inflight.Done()
			exec.Command(filepath.Join(toolDir, "tracecheck"),
				"-server", addr, "testdata/flag_handoff.txt").Run()
		}()
	}
	cmd.Process.Kill()
	cmd.Wait() // "signal: killed" — expected, nothing to assert
	inflight.Wait()

	cmd, addr, base := startVelodromedFull(t, "-store-dir", dir)
	defer func() {
		cmd.Process.Signal(syscall.SIGTERM)
		if err := cmd.Wait(); err != nil {
			t.Errorf("restarted velodromed did not drain cleanly: %v", err)
		}
	}()

	total, recs := apiSessions(t, base)
	if total < 4 {
		t.Errorf("after crash: total=%d, want at least the 4 acknowledged sessions", total)
	}
	if total > 8 {
		t.Errorf("after crash: total=%d, more records than sessions ever attempted", total)
	}
	ids := map[string]bool{}
	for _, rec := range recs {
		var id, status string
		if err := json.Unmarshal(rec["session"], &id); err != nil || id == "" {
			t.Fatalf("corrupted recovered record: %v", rec)
		}
		json.Unmarshal(rec["status"], &status)
		if status != "ok" {
			t.Errorf("recovered record %s has status %q", id, status)
		}
		if ids[id] {
			t.Errorf("recovered record %s duplicated", id)
		}
		ids[id] = true
	}

	// The daemon still takes sessions on the recovered store.
	if out, code := runTool(t, "tracecheck", "-server", addr, "testdata/setadd.txt"); code != 1 {
		t.Fatalf("post-crash session: exit %d:\n%s", code, out)
	}
}

// TestCLIVeloloadSmoke runs the load generator end to end at test scale:
// a spawned daemon, the corpus replay, and the -smoke gate against the
// committed BENCH_daemon.json (whose correctness gates are host
// independent; throughput only compares on a CPU-count match).
func TestCLIVeloloadSmoke(t *testing.T) {
	out, code := runTool(t, "veloload", "-spawn",
		"-sessions", "60", "-concurrency", "6", "-scale", "8", "-smoke")
	if code != 0 {
		t.Fatalf("veloload -smoke: exit %d:\n%s", code, out)
	}
	if !strings.Contains(out, "smoke ok") {
		t.Errorf("missing smoke verdict:\n%s", out)
	}
	// Usage errors exit 2.
	if _, code := runTool(t, "veloload"); code != 2 {
		t.Errorf("no mode flag should exit 2, got %d", code)
	}
	if _, code := runTool(t, "veloload", "-spawn", "-addr", "127.0.0.1:1"); code != 2 {
		t.Errorf("both mode flags should exit 2, got %d", code)
	}
}

// TestCLIVelobenchTraceOut checks the experiment timeline export: one
// span per experiment under the velobench root.
func TestCLIVelobenchTraceOut(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bench.trace.json")
	out, code := runTool(t, "velobench", "-table", "2", "-seeds", "1", "-trace-out", path)
	if code != 0 {
		t.Fatalf("exit %d:\n%s", code, out)
	}
	if !strings.Contains(out, "wrote experiment timeline to "+path) {
		t.Errorf("missing timeline notice:\n%s", out)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if n, err := span.ValidateChrome(data); err != nil || n == 0 {
		t.Fatalf("timeline invalid (%d spans): %v", n, err)
	}
	if !span.FindSpan(data, "table2", "velobench") {
		t.Errorf("timeline missing table2 under velobench:\n%s", data)
	}
}

// TestCLIVeloinstrObsJSON checks that -run surfaces the front-end
// metrics through the obs snapshot.
func TestCLIVeloinstrObsJSON(t *testing.T) {
	out, code := runTool(t, "veloinstr", "-run", "-obs-json", "examples/instr/counter")
	if code != 1 {
		t.Fatalf("counter must be non-serializable; exit %d:\n%s", code, out)
	}
	for _, want := range []string{`"instr_vars_lock_protected":1`, `"instr_sites_pruned":`, `"instr_trace_ops":`} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in obs snapshot:\n%s", want, out)
		}
	}
}

// TestCLIVelovetGolden pins the full (-all) velovet rendering over
// every example package against golden files, and checks the vet-style
// exit code: 1 where a seeded bug yields an error- or warning-severity
// finding, 0 where only advisory diagnostics remain. Regenerate with
//
//	go test -run CLIVelovetGolden -update-velovet .
func TestCLIVelovetGolden(t *testing.T) {
	wantExit := map[string]int{
		"bankbug":    1, // velo-split
		"bankfixed":  0,
		"counter":    1, // velo-lockset
		"auditbug":   1, // velo-split
		"auditfixed": 0,
	}
	for _, ex := range []string{"bankbug", "bankfixed", "counter", "auditbug", "auditfixed"} {
		out, code := runTool(t, "velovet", "-all", "examples/instr/"+ex)
		if code != wantExit[ex] {
			t.Errorf("%s: exit %d, want %d:\n%s", ex, code, wantExit[ex], out)
		}
		golden := filepath.Join("testdata", "velovet", ex+".golden")
		if *updateVelovet {
			if err := os.WriteFile(golden, []byte(out), 0o644); err != nil {
				t.Fatal(err)
			}
			continue
		}
		want, err := os.ReadFile(golden)
		if err != nil {
			t.Fatalf("%s (regenerate with -update-velovet): %v", ex, err)
		}
		if out != string(want) {
			t.Errorf("%s: velovet output diverged from %s\n-- got --\n%s-- want --\n%s", ex, golden, out, want)
		}
	}
}

// TestCLIVelovetBasics covers the remaining CLI surface: finding-only
// default output, multi-package -json, the -codes catalog, directive
// errors, and usage errors.
func TestCLIVelovetBasics(t *testing.T) {
	// Default mode shows findings only: the fixed bank example has just
	// advisory diagnostics, so it prints nothing and exits 0.
	out, code := runTool(t, "velovet", "examples/instr/bankfixed")
	if code != 0 || strings.TrimSpace(out) != "" {
		t.Errorf("bankfixed default mode: exit %d output:\n%s", code, out)
	}
	// Findings render with the package dir prefixed so they're clickable.
	out, code = runTool(t, "velovet", "examples/instr/counter")
	if code != 1 || !strings.Contains(out, "examples/instr/counter/main.go:") ||
		!strings.Contains(out, "[velo-lockset]") {
		t.Errorf("counter default mode: exit %d output:\n%s", code, out)
	}
	if strings.Contains(out, "suggestion:") {
		t.Errorf("default mode must hide suggestions:\n%s", out)
	}

	// -json over several packages yields one object per package.
	out, code = runTool(t, "velovet", "-json", "-all", "examples/instr/bankbug", "examples/instr/auditfixed")
	if code != 1 {
		t.Fatalf("bankbug finding must drive a multi-package run to exit 1; exit %d:\n%s", code, out)
	}
	var results []struct {
		Package     string `json:"package"`
		Diagnostics []struct {
			Code     string `json:"code"`
			Severity string `json:"severity"`
		} `json:"diagnostics"`
	}
	if err := json.Unmarshal([]byte(out), &results); err != nil {
		t.Fatalf("-json output: %v\n%s", err, out)
	}
	if len(results) != 2 || results[0].Package != "examples/instr/bankbug" {
		t.Fatalf("want 2 package objects, got %+v", results)
	}
	codes := map[string]bool{}
	for _, r := range results {
		for _, d := range r.Diagnostics {
			codes[d.Code] = true
		}
	}
	for _, want := range []string{"velo-split", "velo-interproc", "velo-atomic-suggest"} {
		if !codes[want] {
			t.Errorf("missing %s across packages: %v", want, codes)
		}
	}

	// -codes documents every diagnostic code and every pass.
	out, code = runTool(t, "velovet", "-codes")
	if code != 0 {
		t.Fatalf("-codes: exit %d", code)
	}
	for _, want := range []string{
		"velo-directive", "velo-value-recv", "velo-atomic-empty", "velo-nested-atomic",
		"velo-interproc", "velo-lockset", "velo-check-act", "velo-rmw",
		"velo-split", "velo-defer-loop", "velo-atomic-suggest",
		"passes:", "lockset", "suggest",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("-codes missing %q:\n%s", want, out)
		}
	}

	// Ill-formed directives are error-severity findings.
	out, code = runTool(t, "velovet", "testdata/instr/badannot")
	if code != 1 || !strings.Contains(out, "[velo-directive]") {
		t.Errorf("badannot: exit %d output:\n%s", code, out)
	}

	// Usage and load errors exit 2.
	if _, code := runTool(t, "velovet"); code != 2 {
		t.Errorf("no arguments should exit 2, got %d", code)
	}
	if _, code := runTool(t, "velovet", "no/such/dir"); code != 2 {
		t.Errorf("missing package should exit 2, got %d", code)
	}
}
