package repro_test

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

// buildTools compiles the three commands once per test binary.
var buildOnce sync.Once
var toolDir string
var buildErr error

func tools(t *testing.T) string {
	t.Helper()
	buildOnce.Do(func() {
		dir, err := os.MkdirTemp("", "velotools")
		if err != nil {
			buildErr = err
			return
		}
		toolDir = dir
		for _, cmd := range []string{"velodrome", "velobench", "tracecheck"} {
			out, err := exec.Command("go", "build", "-o", filepath.Join(dir, cmd), "./cmd/"+cmd).CombinedOutput()
			if err != nil {
				buildErr = err
				t.Logf("build %s: %s", cmd, out)
				return
			}
		}
	})
	if buildErr != nil {
		t.Fatalf("building tools: %v", buildErr)
	}
	return toolDir
}

func runTool(t *testing.T, name string, args ...string) (string, int) {
	t.Helper()
	cmd := exec.Command(filepath.Join(tools(t), name), args...)
	out, err := cmd.CombinedOutput()
	code := 0
	if ee, ok := err.(*exec.ExitError); ok {
		code = ee.ExitCode()
	} else if err != nil {
		t.Fatalf("%s %v: %v", name, args, err)
	}
	return string(out), code
}

func TestCLIVelodromeList(t *testing.T) {
	out, code := runTool(t, "velodrome", "-list")
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	for _, w := range []string{"elevator", "jigsaw", "raja"} {
		if !strings.Contains(out, w) {
			t.Errorf("missing %s in listing", w)
		}
	}
}

func TestCLIVelodromeRun(t *testing.T) {
	out, code := runTool(t, "velodrome", "-workload", "philo", "-stats")
	if code != 0 {
		t.Fatalf("exit %d:\n%s", code, out)
	}
	for _, want := range []string{"velodrome:", "Table.recordMeal", "graph: allocated="} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
}

func TestCLIVelodromeBackends(t *testing.T) {
	for _, be := range []string{"atomizer", "eraser", "hb", "fasttrack", "empty"} {
		out, code := runTool(t, "velodrome", "-workload", "multiset", "-backend", be)
		if code != 0 {
			t.Errorf("backend %s: exit %d:\n%s", be, code, out)
		}
	}
	if _, code := runTool(t, "velodrome", "-workload", "nope"); code != 2 {
		t.Error("unknown workload should exit 2")
	}
	if _, code := runTool(t, "velodrome", "-workload", "philo", "-backend", "bogus"); code != 2 {
		t.Error("unknown backend should exit 2")
	}
}

func TestCLIRecordAndCheck(t *testing.T) {
	dir := t.TempDir()
	for _, name := range []string{"t.txt", "t.bin"} {
		path := filepath.Join(dir, name)
		out, code := runTool(t, "velodrome", "-workload", "raja", "-record", path)
		if code != 0 {
			t.Fatalf("record: exit %d:\n%s", code, out)
		}
		out, code = runTool(t, "tracecheck", path)
		if code != 0 {
			t.Fatalf("%s: raja must be serializable; exit %d:\n%s", name, code, out)
		}
		if !strings.Contains(out, "serializable") {
			t.Errorf("unexpected output:\n%s", out)
		}
	}
	// A violating workload round-trips to exit status 1.
	path := filepath.Join(dir, "bad.bin")
	runTool(t, "velodrome", "-workload", "multiset", "-record", path)
	out, code := runTool(t, "tracecheck", "-q", path)
	if code != 1 {
		t.Fatalf("multiset trace must be non-serializable; exit %d:\n%s", code, out)
	}
}

func TestCLITracecheckCorpus(t *testing.T) {
	out, code := runTool(t, "tracecheck", "testdata/flag_handoff.txt")
	if code != 0 || !strings.Contains(out, "serializable") {
		t.Fatalf("exit %d:\n%s", code, out)
	}
	out, code = runTool(t, "tracecheck", "testdata/setadd.txt")
	if code != 1 || !strings.Contains(out, "Set.add") {
		t.Fatalf("exit %d:\n%s", code, out)
	}
	if _, code := runTool(t, "tracecheck", "no-such-file"); code != 2 {
		t.Error("missing file should exit 2")
	}
}

func TestCLIVelodromeJSONAndDot(t *testing.T) {
	out, code := runTool(t, "velodrome", "-workload", "multiset", "-json")
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	if !strings.Contains(out, `"method":"Multiset.`) {
		t.Errorf("missing JSON warnings:\n%s", out)
	}
	dotPath := filepath.Join(t.TempDir(), "g.dot")
	out, code = runTool(t, "velodrome", "-workload", "multiset", "-dot", dotPath)
	if code != 0 {
		t.Fatalf("exit %d:\n%s", code, out)
	}
	data, err := os.ReadFile(dotPath)
	if err != nil || !strings.Contains(string(data), "digraph velodrome") {
		t.Errorf("dot output missing: %v", err)
	}
}

func TestCLIVelodromeDescribe(t *testing.T) {
	out, code := runTool(t, "velodrome", "-workload", "colt", "-describe")
	if code != 0 || !strings.Contains(out, "non-atomic(rare)") {
		t.Fatalf("exit %d:\n%s", code, out)
	}
}

func TestCLIVelobench(t *testing.T) {
	out, code := runTool(t, "velobench", "-table", "2", "-seeds", "1")
	if code != 0 {
		t.Fatalf("exit %d:\n%s", code, out)
	}
	for _, want := range []string{"Table 2", "jigsaw", "0 / 0"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q:\n%s", want, out)
		}
	}
	if _, code := runTool(t, "velobench"); code != 2 {
		t.Error("no arguments should exit 2 with usage")
	}
	if _, code := runTool(t, "velobench", "-table", "2", "-seeds", "x"); code != 2 {
		t.Error("bad seeds should exit 2")
	}
}

func TestCLIVelodromeParallel(t *testing.T) {
	out, code := runTool(t, "velodrome", "-workload", "raja", "-parallel")
	if code != 0 {
		t.Fatalf("exit %d:\n%s", code, out)
	}
	if !strings.Contains(out, "velodrome: 0 warnings") {
		t.Errorf("raja under real goroutines must stay clean:\n%s", out)
	}
}
