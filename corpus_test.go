package repro_test

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/core"
	"repro/internal/serial"
	"repro/internal/trace"
)

// corpusVerdicts records the expected verdict and blamed method for each
// trace file under testdata/.
var corpusVerdicts = map[string]struct {
	serializable bool
	blamed       string
}{
	"rmw_violation.txt": {false, "increment"},
	"flag_handoff.txt":  {true, ""},
	"intro_cycle.txt":   {false, "A"},
	"setadd.txt":        {false, "Set.add"},
	"forkjoin.txt":      {true, ""},
}

// TestTraceCorpus checks every testdata trace end to end: parse, validate,
// run the online checker, cross-check the offline oracle, and confirm the
// expected blame.
func TestTraceCorpus(t *testing.T) {
	files, err := filepath.Glob("testdata/*.txt")
	if err != nil || len(files) == 0 {
		t.Fatalf("no corpus files: %v", err)
	}
	seen := 0
	for _, file := range files {
		name := filepath.Base(file)
		want, ok := corpusVerdicts[name]
		if !ok {
			t.Errorf("%s: no expected verdict registered", name)
			continue
		}
		seen++
		f, err := os.Open(file)
		if err != nil {
			t.Fatal(err)
		}
		tr, err := trace.Unmarshal(f)
		f.Close()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if err := trace.Validate(tr); err != nil {
			t.Fatalf("%s: ill-formed: %v", name, err)
		}
		res := core.CheckTrace(tr, core.Options{})
		if res.Serializable != want.serializable {
			t.Errorf("%s: serializable = %v, want %v", name, res.Serializable, want.serializable)
			continue
		}
		offline, _ := serial.Check(tr)
		if offline != res.Serializable {
			t.Errorf("%s: offline oracle disagrees", name)
		}
		if !want.serializable {
			if got := string(res.Warnings[0].Method()); got != want.blamed {
				t.Errorf("%s: blamed %q, want %q", name, got, want.blamed)
			}
		}
	}
	if seen != len(corpusVerdicts) {
		t.Errorf("corpus has %d files, verdicts registered for %d", seen, len(corpusVerdicts))
	}
}

// TestCorpusRoundTrips re-marshals each corpus trace and re-parses it.
func TestCorpusRoundTrips(t *testing.T) {
	files, _ := filepath.Glob("testdata/*.txt")
	for _, file := range files {
		f, err := os.Open(file)
		if err != nil {
			t.Fatal(err)
		}
		tr, err := trace.Unmarshal(f)
		f.Close()
		if err != nil {
			t.Fatal(err)
		}
		tmp, err := os.CreateTemp(t.TempDir(), "trace")
		if err != nil {
			t.Fatal(err)
		}
		if err := trace.Marshal(tmp, tr); err != nil {
			t.Fatal(err)
		}
		if _, err := tmp.Seek(0, 0); err != nil {
			t.Fatal(err)
		}
		tr2, err := trace.Unmarshal(tmp)
		tmp.Close()
		if err != nil {
			t.Fatal(err)
		}
		if tr.String() != tr2.String() {
			t.Errorf("%s: round trip changed the trace", file)
		}
	}
}
