// Command velovet is the standalone static atomicity analyzer: it runs
// the internal/analysis pass suite — directive lint, interprocedural
// lock inference, static lockset (Eraser) checking, atomicity smells,
// and //velo:atomic suggestions — over one or more package directories
// and reports structured diagnostics, vet-style.
//
//	velovet examples/instr/bankbug             findings (errors + warnings)
//	velovet -all examples/instr/bankbug        also info and suggestions
//	velovet -json ./pkg1 ./pkg2                machine-readable diagnostics
//	velovet -codes                             list every diagnostic code
//	velovet -intra ./pkg                       disable interprocedural inference
//
// velovet needs no annotations to be useful — the lockset and smell
// passes run on any package — but //velo:atomic specifications unlock
// the transaction-oriented passes, and the same analysis drives
// veloinstr's event pruning, so a velovet-clean package instruments
// identically to how it reads.
//
// Exit status: 0 no findings, 1 at least one error- or warning-severity
// diagnostic, 2 usage or load/type-checking error.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"text/tabwriter"

	"repro/internal/analysis"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// pkgResult is one element of the -json output array: the schema is the
// same Diagnostic encoding veloinstr -analyze -json embeds.
type pkgResult struct {
	Package     string                `json:"package"`
	Diagnostics []analysis.Diagnostic `json:"diagnostics"`
}

func run(args []string, stdout, stderr *os.File) int {
	fs := flag.NewFlagSet("velovet", flag.ContinueOnError)
	fs.SetOutput(stderr)
	jsonOut := fs.Bool("json", false, "emit diagnostics as JSON (one object per package)")
	all := fs.Bool("all", false, "show info- and suggestion-severity diagnostics, not just findings")
	codes := fs.Bool("codes", false, "list every diagnostic code with its severity and meaning, then exit")
	intra := fs.Bool("intra", false, "disable interprocedural entry-lock inference (classify each function in isolation)")
	fs.Usage = func() {
		fmt.Fprintln(stderr, "usage: velovet [-json] [-all] [-codes] [-intra] <package dir> ...")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *codes {
		writeCatalog(stdout)
		return 0
	}
	if fs.NArg() == 0 {
		fs.Usage()
		return 2
	}

	opts := analysis.DefaultOptions()
	opts.Interprocedural = !*intra

	findings := 0
	var results []pkgResult
	for _, dir := range fs.Args() {
		pkg, err := analysis.Load(dir)
		if err != nil {
			fmt.Fprintln(stderr, "velovet:", err)
			return 2
		}
		dirs := analysis.ScanDirectives(pkg)
		facts := analysis.BuildFacts(pkg, dirs, opts)
		diags := analysis.RunPasses(pkg, dirs, facts)
		findings += analysis.CountFindings(diags)

		if *jsonOut {
			shown := diags
			if !*all {
				shown = onlyFindings(diags)
			}
			if shown == nil {
				shown = []analysis.Diagnostic{}
			}
			results = append(results, pkgResult{Package: dir, Diagnostics: shown})
			continue
		}
		prefix := dir + string(os.PathSeparator)
		for _, d := range diags {
			if !*all && !d.Severity.IsFinding() {
				continue
			}
			fmt.Fprintln(stdout, d.Render(prefix))
		}
	}
	if *jsonOut {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(results); err != nil {
			fmt.Fprintln(stderr, "velovet:", err)
			return 2
		}
	}
	if findings > 0 {
		return 1
	}
	return 0
}

// onlyFindings filters to error- and warning-severity diagnostics.
func onlyFindings(ds []analysis.Diagnostic) []analysis.Diagnostic {
	var out []analysis.Diagnostic
	for _, d := range ds {
		if d.Severity.IsFinding() {
			out = append(out, d)
		}
	}
	return out
}

// writeCatalog prints the diagnostic-code reference (-codes).
func writeCatalog(w *os.File) {
	tw := tabwriter.NewWriter(w, 2, 8, 2, ' ', 0)
	fmt.Fprintln(tw, "CODE\tSEVERITY\tMEANING")
	for _, c := range analysis.Catalog() {
		fmt.Fprintf(tw, "%s\t%s\t%s\n", c.Code, c.Severity, c.Doc)
	}
	tw.Flush()
	fmt.Fprintln(w, "\npasses:")
	for _, p := range analysis.Passes() {
		fmt.Fprintf(w, "  %-12s %s\n", p.Name, p.Doc)
	}
}
