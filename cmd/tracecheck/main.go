// Command tracecheck reads a trace — the one-operation-per-line text
// format or the compact binary format, auto-detected — and decides
// conflict-serializability with the online Velodrome analysis,
// cross-checking the offline oracle:
//
//	tracecheck trace.txt
//	tracecheck -          # read standard input
//	tracecheck -in -      # same, flag form (for pipelines)
//	tracecheck -dot out.dot trace.txt
//	tracecheck -server 127.0.0.1:7764 trace.bin   # check via velodromed
//
// The trace syntax:
//
//	begin.Set.add(1)     thread 1 enters atomic block "Set.add"
//	acq(1,m0)            thread 1 acquires lock m0
//	rd(1,x3)  wr(2,x3)   reads and writes of shared variables
//	rel(1,m0) end(1)     release; exit innermost block
//	fork(1,t2) join(1,t2)
//
// Exit status: 0 serializable, 1 non-serializable, 2 usage/input error.
// An empty input — zero operations, as produced by a crashed emitter or
// a misdirected pipe — is an input error (exit 2), never a vacuous
// "serializable".
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"repro/internal/core"
	"repro/internal/dot"
	"repro/internal/forensic"
	"repro/internal/obs"
	"repro/internal/pipeline"
	"repro/internal/serial"
	"repro/internal/server"
	"repro/internal/span"
	"repro/internal/trace"
)

func main() {
	dotOut := flag.String("dot", "", "write error graphs (dot format) to this file")
	engine := flag.String("engine", "optimized", "analysis engine: "+core.EngineNames())
	quiet := flag.Bool("q", false, "suppress warning details")
	obsJSON := flag.Bool("obs-json", false, "emit the full obs snapshot (per-kind latencies, graph stats) as JSON on stderr")
	noFilter := flag.Bool("nofilter", false, "disable the redundant-event fast path (Section 5 filtering)")
	parallel := flag.Int("parallel", 1, "decode and filter with this many pipeline workers (local checking; >1 enables the staged pipeline)")
	forensics := flag.Bool("forensics", false, "enable the event flight recorder (provenance reports on warnings)")
	explain := flag.Bool("explain", false, "print a provenance report per warning (implies -forensics; works in -server mode too)")
	inFlag := flag.String("in", "", "trace input: a file name or - for standard input (alternative to the positional argument)")
	serverAddr := flag.String("server", "", "check via a velodromed daemon at this address (host:port or unix:/path) instead of locally")
	apiKey := flag.String("key", "", "tenant API key sent in the session header (-server mode); absent = the daemon's default tenant")
	traceOut := flag.String("trace-out", "", "write a Chrome trace-event timeline of the local pipeline (decode, check, oracle, dot) to this file")
	var oflags obs.CLIFlags
	oflags.Register(flag.CommandLine, obs.FlagProfile)
	flag.Parse()
	if *explain {
		*forensics = true
	}
	einfo, ok := core.EngineByName(*engine)
	if !ok {
		fmt.Fprintf(os.Stderr, "tracecheck: unknown engine %q (want %s)\n", *engine, core.EngineNames())
		os.Exit(2)
	}
	if _, err := oflags.Logger(os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "tracecheck:", err)
		os.Exit(2)
	}
	name := *inFlag
	switch {
	case name == "" && flag.NArg() == 1:
		name = flag.Arg(0)
	case name != "" && flag.NArg() == 0:
	default:
		fmt.Fprintln(os.Stderr, "usage: tracecheck [-dot out.dot] [-in <file|->] [<trace file | ->]")
		os.Exit(2)
	}

	var in io.Reader = os.Stdin
	if name != "-" {
		f, err := os.Open(name)
		if err != nil {
			fmt.Fprintln(os.Stderr, "tracecheck:", err)
			os.Exit(2)
		}
		defer f.Close()
		in = f
	}

	if *serverAddr != "" {
		if *traceOut != "" {
			fmt.Fprintln(os.Stderr, "tracecheck: -trace-out only applies to local checking (the daemon traces sessions itself; see velodromed -trace-dir)")
			os.Exit(2)
		}
		// Client mode: stream the raw bytes to the daemon and relay its
		// verdict, mapping statuses onto the local exit convention.
		hdr := trace.SessionHeader{Engine: einfo.Name, Forensics: *forensics, Key: *apiKey}
		v, err := server.CheckReader(*serverAddr, hdr, in)
		if err != nil {
			fmt.Fprintln(os.Stderr, "tracecheck:", err)
			os.Exit(2)
		}
		switch v.Status {
		case trace.StatusOK:
			if v.Serializable {
				fmt.Printf("serializable: %d operations (checked by %s at %s; session %s in %dms)\n",
					v.Ops, v.Engine, *serverAddr, v.Session, v.DurationMs)
			} else {
				fmt.Printf("NOT serializable: %d warnings over %d operations (checked by %s at %s; session %s in %dms)\n",
					len(v.Warnings), v.Ops, v.Engine, *serverAddr, v.Session, v.DurationMs)
				if !*quiet {
					for i, w := range v.Warnings {
						fmt.Println(w)
						if *explain && i < len(v.Reports) {
							if rep, err := forensic.ParseReport(v.Reports[i]); err == nil {
								rep.WriteText(os.Stdout)
							}
						}
					}
				}
			}
		default:
			fmt.Fprintf(os.Stderr, "tracecheck: server %s: %s: %s (%d ops consumed)\n", *serverAddr, v.Status, v.Error, v.Ops)
		}
		os.Exit(v.ExitCode())
	}

	// The pipeline tracer (nil when -trace-out is unset, and then every
	// span call below is an inert pointer test — the traced and untraced
	// paths run the same code).
	var tracer *span.Tracer
	var sb *span.Buf
	var root span.SpanID
	if *traceOut != "" {
		tracer = span.New()
		sb = tracer.Buffer("tracecheck")
		root = sb.Start("session", 0)
		sb.AttrStr(root, "input", name)
		sb.AttrStr(root, "engine", einfo.Name)
	}

	loadStart := tracer.Now()
	tr, err := trace.ReadAuto(in)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tracecheck:", err)
		os.Exit(2)
	}
	if len(tr) == 0 {
		fmt.Fprintln(os.Stderr, "tracecheck: empty trace: input contained 0 operations (crashed producer or misdirected pipe?)")
		os.Exit(2)
	}
	if err := trace.Validate(tr); err != nil {
		fmt.Fprintln(os.Stderr, "tracecheck: ill-formed trace:", err)
		os.Exit(2)
	}
	if sb != nil {
		sb.AddStage(span.StageDecode, tracer.Now()-loadStart)
		id := sb.Emit("decode", root, loadStart, tracer.Now())
		sb.AttrInt(id, "ops", int64(len(tr)))
	}

	opts := core.Options{Engine: einfo.Engine, NoFilter: *noFilter, Forensics: *forensics, Spans: sb}
	reg := obs.NewRegistry()
	if *obsJSON {
		opts.Metrics = reg
	}
	stopProf, _, err := oflags.StartProfile()
	if err != nil {
		fmt.Fprintln(os.Stderr, "tracecheck:", err)
		os.Exit(2)
	}
	// finish finalizes the profile, snapshot and pipeline trace before
	// exiting, since os.Exit skips deferred calls.
	finish := func(code int) {
		if err := stopProf(); err != nil {
			fmt.Fprintln(os.Stderr, "tracecheck: profile:", err)
		}
		if *obsJSON {
			reg.Snapshot().WriteJSON(os.Stderr)
		}
		if tracer != nil {
			sb.End(root)
			sb.Flush()
			if err := tracer.WriteChromeFile(*traceOut); err != nil {
				fmt.Fprintln(os.Stderr, "tracecheck: trace-out:", err)
				if code == 0 {
					code = 2
				}
			} else {
				fmt.Fprintf(os.Stderr, "tracecheck: wrote pipeline trace to %s\n", *traceOut)
			}
		}
		os.Exit(code)
	}
	checkStart := tracer.Now()
	var res *core.Result
	if *parallel > 1 {
		res = pipeline.CheckTrace(tr, opts, pipeline.Config{Workers: *parallel})
	} else {
		res = core.CheckTrace(tr, opts)
	}
	if sb != nil {
		now := tracer.Now()
		chk := sb.Emit("check", root, checkStart, now)
		sb.AttrInt(chk, "ops", int64(len(tr)))
		sb.AttrInt(chk, "warnings", int64(len(res.Warnings)))
		sb.EmitStages(chk, checkStart, now, nil,
			span.StageFilter, span.StageGraph, span.StageForensics)
	}
	oracleStart := tracer.Now()
	offline, _ := serial.Check(tr)
	sb.Emit("oracle", root, oracleStart, tracer.Now())
	if offline != res.Serializable {
		fmt.Fprintln(os.Stderr, "tracecheck: INTERNAL DISAGREEMENT between online and offline checkers")
		finish(2)
	}
	if res.Serializable {
		fmt.Printf("serializable: %d operations, %d transactions allocated (max %d alive)\n",
			len(tr), res.Stats.Allocated, res.Stats.MaxAlive)
		finish(0)
	}
	fmt.Printf("NOT serializable: %d warnings over %d operations\n", len(res.Warnings), len(tr))
	if !*quiet {
		for _, w := range res.Warnings {
			fmt.Println(w)
			if rep := w.Forensics(); *explain && rep != nil {
				rep.WriteText(os.Stdout)
			}
		}
	}
	if *dotOut != "" {
		dotStart := tracer.Now()
		out := dot.RenderAll(res.Warnings)
		if *forensics {
			var b strings.Builder
			for i, w := range res.Warnings {
				if i > 0 {
					b.WriteByte('\n')
				}
				if rep := w.Forensics(); rep != nil {
					b.WriteString(dot.RenderReport(rep))
				} else {
					b.WriteString(dot.Render(w))
				}
			}
			out = b.String()
		}
		if err := os.WriteFile(*dotOut, []byte(out), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "tracecheck:", err)
			finish(2)
		}
		sb.Emit("dot", root, dotStart, tracer.Now())
	}
	finish(1)
}
