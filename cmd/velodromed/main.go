// Command velodromed is the trace-ingestion daemon: a long-lived server
// that accepts many concurrent trace sessions over TCP and Unix sockets,
// runs one independent Velodrome engine per connection, and replies with
// a structured JSON verdict.
//
//	velodromed -listen 127.0.0.1:7764
//	velodromed -listen 127.0.0.1:7764 -unix /tmp/velo.sock -metrics-addr :8081
//	veloinstr -run -server 127.0.0.1:7764 examples/instr/bankbug
//	tracecheck -server 127.0.0.1:7764 trace.bin
//
// A session is one connection: a "VELOSESS/1" header line, the trace in
// either wire format, a half-close, then one verdict line back (see
// DESIGN.md, "The session protocol"). On SIGINT/SIGTERM the daemon
// drains gracefully: it stops accepting, lets in-flight sessions finish
// up to -drain-timeout, and emits their final verdicts before exiting.
//
// With -store-dir the daemon persists each completed session's record
// to an append-only segmented log and refills its history from it on
// startup, so /api/sessions and /debug/velo survive restarts (retention
// via -store-max-bytes / -store-max-age, fsync cadence via
// -store-sync-every). With -keyfile sessions are partitioned into
// tenants by the header's key= field: per-tenant session-rate and
// concurrency quotas are enforced before the global -max-sessions slot
// (verdict code "quota-exceeded"), and each tenant gets its own
// velodromed_tenant_* metric family plus a ?tenant= dashboard filter.
// Keyless sessions run under the built-in "default" tenant unchanged.
//
// Logs are structured (log/slog): text lines by default, JSON objects
// under -log-json. With -metrics-addr set, /debug/velo on the metrics
// mux lists the live sessions (id, engine, ops, graph size, filter hit
// rate, last warning) as HTML or JSON, and /api/sessions serves the
// verdict history (?limit, ?before cursor, ?tenant, ?since/?until).
// -heartbeat prints a periodic operations line (active sessions,
// sessions/s, shed/quota/store counters) on stderr.
//
// Exit status: 0 after a clean drain, 1 if draining timed out and
// sessions were cut, 2 on startup errors.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/obs/obshttp"
	"repro/internal/server"
	"repro/internal/store"
)

func main() {
	os.Exit(run())
}

func run() int {
	listen := flag.String("listen", "127.0.0.1:7764", "TCP listen address")
	unixSock := flag.String("unix", "", "also listen on this Unix socket path")
	maxSessions := flag.Int("max-sessions", 64, "concurrent session cap; excess connections get a busy verdict")
	idleTimeout := flag.Duration("idle-timeout", 30*time.Second, "per-read deadline: fail a session that goes this long without a byte")
	sessionTimeout := flag.Duration("session-timeout", 0, "bound one session's total wall-clock time (0 = unbounded)")
	drainTimeout := flag.Duration("drain-timeout", 15*time.Second, "on SIGINT/SIGTERM, let in-flight sessions finish this long before cutting them")
	bufferOps := flag.Int("buffer-ops", 1024, "decoded ops buffered ahead of each session's engine (backpressure bound)")
	engine := flag.String("engine", "optimized", "default analysis engine for sessions that name none: "+core.EngineNames())
	parallel := flag.Int("parallel", 0, "check each session through the staged pipeline with this many shard workers (0 or 1 = serial)")
	spanTrace := flag.Bool("span-trace", true, "trace each session's pipeline stages (decode/filter/graph/forensics); summaries land in verdicts, /api/sessions and /debug/velo")
	traceDir := flag.String("trace-dir", "", "write each session's full span timeline as <dir>/<session>.trace.json (Chrome trace-event format)")
	history := flag.Int("history", server.DefaultHistorySize, "completed sessions retained for /api/sessions and the /debug/velo dashboard")
	storeDir := flag.String("store-dir", "", "persist session verdicts to an append-only log in this directory; /api/sessions survives restarts")
	storeMaxBytes := flag.Int64("store-max-bytes", 64<<20, "drop the oldest store segments once the log exceeds this size")
	storeMaxAge := flag.Duration("store-max-age", 0, "drop store segments whose newest record is older than this (0 = keep until the size bound)")
	storeSyncEvery := flag.Int("store-sync-every", 1, "fsync the store after every N appended records (1 = every verdict durable before the ring)")
	keyfile := flag.String("keyfile", "", "tenant keyfile: 'tenant <name> key=<k> rate=N burst=N concurrent=N' per line; sessions authenticate with the VELOSESS/1 key= field")
	quiet := flag.Bool("q", false, "suppress per-session log lines")
	var oflags obs.CLIFlags
	oflags.Register(flag.CommandLine, obs.FlagMetrics|obs.FlagHeartbeat)
	flag.Parse()
	if flag.NArg() != 0 {
		fmt.Fprintln(os.Stderr, "usage: velodromed [-listen addr] [-unix path] [flags]")
		return 2
	}
	logger, err := oflags.Logger(os.Stderr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "velodromed:", err)
		return 2
	}

	cfg := server.Config{
		MaxSessions:    *maxSessions,
		IdleTimeout:    *idleTimeout,
		MaxSessionTime: *sessionTimeout,
		BufferOps:      *bufferOps,
		Metrics:        obs.NewRegistry(),
		NoSpans:        !*spanTrace,
		TraceDir:       *traceDir,
		HistorySize:    *history,
		Parallel:       *parallel,
	}
	if *traceDir != "" {
		if !*spanTrace {
			fmt.Fprintln(os.Stderr, "velodromed: -trace-dir requires -span-trace")
			return 2
		}
		if err := os.MkdirAll(*traceDir, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, "velodromed:", err)
			return 2
		}
	}
	einfo, ok := core.EngineByName(*engine)
	if !ok {
		fmt.Fprintf(os.Stderr, "velodromed: unknown engine %q (want %s)\n", *engine, core.EngineNames())
		return 2
	}
	cfg.DefaultEngine = einfo.Engine
	if !*quiet {
		cfg.Logger = logger // nil stays silent for per-session records
	}
	if *keyfile != "" {
		cfgs, err := server.LoadKeyfile(*keyfile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "velodromed:", err)
			return 2
		}
		if cfg.Tenants, err = server.NewTenants(cfgs); err != nil {
			fmt.Fprintln(os.Stderr, "velodromed:", err)
			return 2
		}
		logger.Info("tenants loaded", "keyfile", *keyfile, "tenants", len(cfgs))
	}

	s := server.New(cfg)
	if *storeDir != "" {
		st, err := store.Open(*storeDir, store.Options{
			MaxBytes:  *storeMaxBytes,
			MaxAge:    *storeMaxAge,
			SyncEvery: *storeSyncEvery,
			Logger:    logger,
		})
		if err != nil {
			logger.Error("opening session store failed", "dir", *storeDir, "error", err)
			return 2
		}
		defer st.Close()
		if err := s.BindStore(st); err != nil {
			logger.Error("binding session store failed", "dir", *storeDir, "error", err)
			return 2
		}
		stats := st.Stats()
		logger.Info("session store open", "dir", *storeDir,
			"recovered", stats.Recovered, "lastSeq", stats.LastSeq,
			"tailTruncated", stats.TailTruncated)
	}
	if oflags.MetricsAddr != "" {
		_, addr, err := obshttp.Serve(oflags.MetricsAddr, cfg.Metrics,
			obshttp.Mount{Pattern: "/debug/velo", Handler: s.DebugHandler()},
			obshttp.Mount{Pattern: "/api/sessions/", Handler: s.History().APIHandler()})
		if err != nil {
			logger.Error("metrics server failed", "error", err)
			return 2
		}
		logger.Info("serving metrics", "url", "http://"+addr.String(),
			"endpoints", "/metrics /debug/pprof/ /debug/velo /api/sessions")
	}

	if oflags.Heartbeat > 0 {
		// The heartbeat is the no-scrape view of service health: a bare
		// terminal (or journald) shows load, rejections and store lag
		// without anyone curling /metrics.
		sessRate, opRate := obs.NewRate(time.Now()), obs.NewRate(time.Now())
		stopHB := obs.StartHeartbeat(os.Stderr, oflags.Heartbeat, func() string {
			h := s.Health()
			now := time.Now()
			return fmt.Sprintf("velodromed: active=%d sessions/s=%.1f ops/s=%.0f shed=%d quota-rejected=%d rejected=%d store-lag=%d store-errors=%d",
				h.Active, sessRate.Per(h.Accepted, now), opRate.Per(h.Ops, now),
				h.Shed, h.QuotaRejected, h.Rejected, h.StoreLag, h.StoreErrors)
		})
		defer stopHB()
	}

	// Catch signals before announcing any listener: a supervisor that
	// reacts to the announce by sending SIGTERM must hit the drain path,
	// never the default disposition.
	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, os.Interrupt, syscall.SIGTERM)

	serveErrs := make(chan error, 2)
	addrs := []string{*listen}
	if *unixSock != "" {
		addrs = append(addrs, "unix:"+*unixSock)
	}
	for _, addr := range addrs {
		ln, err := server.Listen(addr)
		if err != nil {
			logger.Error("listen failed", "addr", addr, "error", err)
			return 2
		}
		logger.Info("listening", "addr", ln.Addr().String())
		go func() { serveErrs <- s.Serve(ln) }()
	}

	select {
	case sig := <-sigs:
		logger.Info("draining", "signal", sig.String(), "timeout", drainTimeout.String())
	case err := <-serveErrs:
		// A listener died outside shutdown: still drain what's running.
		logger.Error("listener failed; draining", "error", err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		logger.Warn("drain timed out; in-flight sessions cut", "error", err)
		return 1
	}
	logger.Info("drained cleanly")
	return 0
}
