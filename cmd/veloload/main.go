// Command veloload is the load generator behind BENCH_daemon.json: it
// replays the benchmark corpus (every Table 1 workload plus the
// synthetic families) as concurrent sessions against a live velodromed
// and reports the service's operating envelope — sessions/s, p50/p99
// verdict latency, shed and quota-reject rates, store fsync overhead.
//
//	veloload -spawn -out BENCH_daemon.json     # self-contained: spawns a daemon
//	veloload -addr 127.0.0.1:7764 -sessions 500 -concurrency 16
//	veloload -spawn -smoke                     # CI gate vs committed BENCH_daemon.json
//
// With -spawn, veloload runs a daemon in-process with a durable store
// and a three-tenant keyfile mix (default: unlimited; alpha: generous
// quotas; beta: a deliberately tight session rate so quota rejection is
// exercised, not just implemented). With -addr it drives an external
// daemon and the tenant mix defaults to keyless sessions.
//
// Exit status: 0 on success, 1 on a failed -smoke comparison, 2 on
// setup errors.
package main

import (
	"flag"
	"fmt"
	"io"
	"log/slog"
	"os"
	"strconv"
	"strings"

	"repro/internal/core"
	"repro/internal/exper"
	"repro/internal/server"
	"repro/internal/store"
)

// spawnMix is the tenant mix -spawn installs and drives: the beta
// tenant's rate is low enough that a few hundred sessions in a few
// seconds must trip it, so the committed report proves quota enforcement
// under load rather than assuming it.
var spawnMix = []struct {
	cfg    server.TenantConfig
	weight int
}{
	{server.TenantConfig{Name: "default"}, 6},
	{server.TenantConfig{Name: "alpha", Key: "load-alpha-key", RatePerSec: 1000, Burst: 1000, MaxConcurrent: 32}, 3},
	{server.TenantConfig{Name: "beta", Key: "load-beta-key", RatePerSec: 2, Burst: 2}, 1},
}

func main() {
	os.Exit(run())
}

func run() int {
	addr := flag.String("addr", "", "drive an existing velodromed at this address (host:port or unix:/path)")
	spawn := flag.Bool("spawn", false, "spawn an in-process daemon (with store and tenant mix) instead of -addr")
	sessions := flag.Int("sessions", 400, "total sessions to run")
	concurrency := flag.Int("concurrency", 8, "concurrent client workers")
	scale := flag.Int("scale", exper.DaemonCorpusScale, "benchmark workload scale for the replay corpus")
	mix := flag.String("mix", "", "tenant mix as name:key:weight,... (default: spawn's built-in three tenants, or all-default against -addr)")
	maxSessions := flag.Int("max-sessions", 64, "spawned daemon's concurrent session cap")
	syncEvery := flag.Int("store-sync-every", 1, "spawned daemon's store fsync cadence")
	storeDir := flag.String("store-dir", "", "spawned daemon's store directory (default: a temp dir, removed afterwards)")
	out := flag.String("out", "", "write the report JSON here ('-' for stdout)")
	smoke := flag.Bool("smoke", false, "compare the run against -committed and exit non-zero on regression")
	committedPath := flag.String("committed", "BENCH_daemon.json", "committed report the -smoke gate compares against")
	flag.Parse()
	if flag.NArg() != 0 || (*addr == "") == !*spawn {
		fmt.Fprintln(os.Stderr, "usage: veloload (-spawn | -addr host:port) [flags]")
		return 2
	}

	tenants, err := parseMix(*mix)
	if err != nil {
		fmt.Fprintln(os.Stderr, "veloload:", err)
		return 2
	}

	var st *store.Store
	if *spawn {
		dir := *storeDir
		if dir == "" {
			tmp, err := os.MkdirTemp("", "veloload-store-")
			if err != nil {
				fmt.Fprintln(os.Stderr, "veloload:", err)
				return 2
			}
			defer os.RemoveAll(tmp)
			dir = tmp
		}
		if st, err = store.Open(dir, store.Options{SyncEvery: *syncEvery}); err != nil {
			fmt.Fprintln(os.Stderr, "veloload:", err)
			return 2
		}
		defer st.Close()

		var cfgs []server.TenantConfig
		for _, m := range spawnMix {
			cfgs = append(cfgs, m.cfg)
		}
		tens, err := server.NewTenants(cfgs)
		if err != nil {
			fmt.Fprintln(os.Stderr, "veloload:", err)
			return 2
		}
		einfo, _ := core.EngineByName("optimized")
		s := server.New(server.Config{
			MaxSessions:   *maxSessions,
			DefaultEngine: einfo.Engine,
			Tenants:       tens,
			Logger:        slog.New(slog.NewTextHandler(io.Discard, nil)),
		})
		if err := s.BindStore(st); err != nil {
			fmt.Fprintln(os.Stderr, "veloload:", err)
			return 2
		}
		ln, err := server.Listen("127.0.0.1:0")
		if err != nil {
			fmt.Fprintln(os.Stderr, "veloload:", err)
			return 2
		}
		go s.Serve(ln)
		*addr = ln.Addr().String()
		if tenants == nil {
			for _, m := range spawnMix {
				tenants = append(tenants, exper.DaemonTenant{Name: m.cfg.Name, Key: m.cfg.Key, Weight: m.weight})
			}
		}
	}

	fmt.Fprintf(os.Stderr, "veloload: building corpus (scale %d)\n", *scale)
	corpus := exper.DaemonCorpus(*scale)
	fmt.Fprintf(os.Stderr, "veloload: driving %d sessions x%d against %s\n", *sessions, *concurrency, *addr)
	rep, err := exper.DaemonLoad(exper.DaemonLoadOptions{
		Addr:        *addr,
		Sessions:    *sessions,
		Concurrency: *concurrency,
		Tenants:     tenants,
		Corpus:      corpus,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "veloload:", err)
		return 2
	}
	if st != nil {
		ss := st.Stats()
		dss := &exper.DaemonStoreStats{
			Appended: ss.Appended,
			Fsyncs:   ss.Fsyncs,
			FsyncNs:  ss.FsyncNs,
			Lag:      int64(ss.Lag),
		}
		if ss.Fsyncs > 0 {
			dss.FsyncUsMean = float64(ss.FsyncNs) / float64(ss.Fsyncs) / 1e3
		}
		rep.Store = dss
	}

	fmt.Fprintf(os.Stderr,
		"veloload: %.1f sessions/s, p50 %.1fms p99 %.1fms, shed %.1f%% quota %.1f%% err %.1f%%, %d non-serializable\n",
		rep.SessionsPerSec, rep.P50Ms, rep.P99Ms,
		100*rep.ShedRate, 100*rep.QuotaRejectRate, 100*rep.ErrorRate, rep.NotSerializable)

	if *out != "" {
		w := os.Stdout
		if *out != "-" {
			f, err := os.Create(*out)
			if err != nil {
				fmt.Fprintln(os.Stderr, "veloload:", err)
				return 2
			}
			defer f.Close()
			w = f
		}
		if err := rep.WriteJSON(w); err != nil {
			fmt.Fprintln(os.Stderr, "veloload:", err)
			return 2
		}
	}

	if *smoke {
		f, err := os.Open(*committedPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "veloload:", err)
			return 2
		}
		committed, err := exper.ReadDaemon(f)
		f.Close()
		if err != nil {
			fmt.Fprintln(os.Stderr, "veloload:", err)
			return 2
		}
		if !exper.DaemonSmoke(committed, rep, os.Stderr) {
			fmt.Fprintln(os.Stderr, "veloload: smoke FAILED")
			return 1
		}
		fmt.Fprintln(os.Stderr, "veloload: smoke ok")
	}
	return 0
}

// parseMix reads a name:key:weight,... tenant mix ("" → nil).
func parseMix(s string) ([]exper.DaemonTenant, error) {
	if s == "" {
		return nil, nil
	}
	var out []exper.DaemonTenant
	for _, part := range strings.Split(s, ",") {
		fields := strings.Split(part, ":")
		if len(fields) != 3 {
			return nil, fmt.Errorf("bad -mix entry %q (want name:key:weight)", part)
		}
		w, err := strconv.Atoi(fields[2])
		if err != nil || w < 1 {
			return nil, fmt.Errorf("bad -mix weight %q", fields[2])
		}
		out = append(out, exper.DaemonTenant{Name: fields[0], Key: fields[1], Weight: w})
	}
	return out, nil
}
