// Command veloinstr is the static-instrumentation front-end: it
// type-checks a Go package, classifies its memory accesses with a
// conservative shared-access analysis (pruning provably thread-local
// and single-mutex-protected accesses, the paper's redundant-event
// optimizations), rewrites the source to emit Velodrome trace events,
// and optionally runs the result with the events piped straight into
// the online engines and the offline serial oracle:
//
//	veloinstr -analyze examples/instr/bankbug      classification + velovet diagnostics
//	veloinstr -analyze -json <pkg>                 same, machine-readable (velovet schema)
//	veloinstr -analyze -intra <pkg>                disable interprocedural lock inference
//	veloinstr examples/instr/bankbug               print instrumented source
//	veloinstr -o /tmp/out examples/instr/bankbug   write instrumented package
//	veloinstr -run examples/instr/bankbug          instrument, go run, check
//	veloinstr -run -server 127.0.0.1:7764 <pkg>    stream the trace to velodromed
//
// Atomicity specifications are //velo:atomic comments on function
// declarations.
//
// Exit status, both modes: 0 clean (serializable trace / no static
// findings), 1 findings (a non-serializable trace / error- or
// warning-severity diagnostics), 2 usage, infrastructure or
// type-checking error.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"

	"repro/internal/analysis"
	"repro/internal/core"
	"repro/internal/instr"
	"repro/internal/obs"
	"repro/internal/pipeline"
	"repro/internal/serial"
	"repro/internal/server"
	"repro/internal/span"
	"repro/internal/trace"
)

func main() {
	os.Exit(run())
}

func run() int {
	analyze := flag.Bool("analyze", false, "print the access classification table and velovet diagnostics, without rewriting")
	jsonOut := flag.Bool("json", false, "with -analyze: emit the report as JSON (velovet diagnostic schema)")
	intra := flag.Bool("intra", false, "disable interprocedural entry-lock inference (classify each function in isolation)")
	doRun := flag.Bool("run", false, "instrument, build and run the package, checking the emitted trace online")
	parallel := flag.Int("parallel", 1, "with -run: check the collected trace through the staged pipeline with this many workers")
	outDir := flag.String("o", "", "write the instrumented package to this directory")
	noprune := flag.Bool("noprune", false, "emit events even for accesses the analysis proved redundant")
	traceOut := flag.String("trace", "", "with -run: also save the collected trace to this file")
	spanOut := flag.String("trace-out", "", "with -run: write a Chrome trace-event timeline of the pipeline (instrument, execute, check, oracle) to this file")
	obsJSON := flag.Bool("obs-json", false, "with -run: emit the obs snapshot (instr + engine metrics) as JSON on stderr")
	serverAddr := flag.String("server", "", "with -run: stream the trace to a velodromed daemon at this address instead of checking locally")
	var oflags obs.CLIFlags
	oflags.Register(flag.CommandLine, 0)
	flag.Parse()
	if _, err := oflags.Logger(os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "veloinstr:", err)
		return 2
	}
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: veloinstr [-analyze [-json] | -run] [-intra] [-o dir] [-noprune] [-server addr] <package dir>")
		return 2
	}
	if *serverAddr != "" && (!*doRun || *traceOut != "" || *obsJSON || *spanOut != "") {
		fmt.Fprintln(os.Stderr, "veloinstr: -server requires -run and is incompatible with -trace, -trace-out and -obs-json")
		return 2
	}
	if *spanOut != "" && !*doRun {
		fmt.Fprintln(os.Stderr, "veloinstr: -trace-out requires -run")
		return 2
	}
	if *jsonOut && !*analyze {
		fmt.Fprintln(os.Stderr, "veloinstr: -json requires -analyze")
		return 2
	}
	dir := flag.Arg(0)

	// The pipeline tracer: inert (nil) without -trace-out, so both paths
	// run the same code.
	var tracer *span.Tracer
	var sb *span.Buf
	var root span.SpanID
	if *spanOut != "" {
		tracer = span.New()
		sb = tracer.Buffer("veloinstr")
		root = sb.Start("run", 0)
		sb.AttrStr(root, "package", dir)
	}

	instStart := tracer.Now()
	pkg, err := instr.Load(dir)
	if err != nil {
		fmt.Fprintln(os.Stderr, "veloinstr:", err)
		return 2
	}
	dirs := instr.ScanDirectives(pkg)
	opts := analysis.DefaultOptions()
	opts.Interprocedural = !*intra
	an := instr.AnalyzeOpts(pkg, dirs, opts)
	rep := instr.NewReport(pkg, dirs, an)

	if *analyze {
		if *jsonOut {
			if err := rep.WriteJSON(os.Stdout); err != nil {
				fmt.Fprintln(os.Stderr, "veloinstr:", err)
				return 2
			}
		} else {
			rep.WriteTable(os.Stdout)
		}
		if rep.FindingCount() > 0 {
			return 1
		}
		return 0
	}
	// Error-severity diagnostics (malformed directives) make the atomicity
	// spec unreliable, so instrumentation refuses to proceed; warnings and
	// suggestions are -analyze's business and don't block a rewrite.
	blocked := false
	for _, d := range dirs.Diags {
		if d.Severity == analysis.SevError {
			fmt.Fprintln(os.Stderr, "veloinstr: annotation error:", d)
			blocked = true
		}
	}
	if blocked {
		return 2
	}

	out, err := instr.Rewrite(pkg, dirs, an, instr.RewriteOptions{Prune: !*noprune})
	if err != nil {
		fmt.Fprintln(os.Stderr, "veloinstr:", err)
		return 2
	}
	sb.Emit("instrument", root, instStart, tracer.Now())

	if !*doRun {
		if *outDir != "" {
			if err := writePackage(*outDir, out); err != nil {
				fmt.Fprintln(os.Stderr, "veloinstr:", err)
				return 2
			}
			fmt.Printf("wrote %d files to %s (%d access sites instrumented, %d pruned)\n",
				len(out.Files)+2, *outDir, out.SitesEmitted, out.SitesPruned)
			return 0
		}
		for _, name := range sortedNames(out.Files) {
			fmt.Printf("// ---- %s ----\n%s\n", name, out.Files[name])
		}
		fmt.Printf("// ---- %s ----\n%s\n", instr.ShimFileName, out.Shim)
		return 0
	}

	// -run: materialize, execute with the trace on an inherited pipe,
	// and stream the events through both engines as they arrive.
	runDir := *outDir
	if runDir == "" {
		tmp, err := os.MkdirTemp("", "veloinstr-*")
		if err != nil {
			fmt.Fprintln(os.Stderr, "veloinstr:", err)
			return 2
		}
		defer os.RemoveAll(tmp)
		runDir = tmp
	}
	if err := writePackage(runDir, out); err != nil {
		fmt.Fprintln(os.Stderr, "veloinstr:", err)
		return 2
	}

	if *serverAddr != "" {
		return runViaServer(runDir, *serverAddr, filepath.Base(dir), out)
	}

	reg := obs.NewRegistry()
	rep.Record(reg)
	reg.Gauge("instr_sites_emitted").Set(int64(out.SitesEmitted))
	reg.Gauge("instr_sites_pruned").Set(int64(out.SitesPruned))

	execStart := tracer.Now()
	tr, runtimeComments, err := execAndCollect(runDir)
	if err != nil {
		fmt.Fprintln(os.Stderr, "veloinstr:", err)
		return 2
	}
	if sb != nil {
		id := sb.Emit("execute", root, execStart, tracer.Now())
		sb.AttrInt(id, "ops", int64(len(tr)))
	}
	if len(tr) == 0 {
		fmt.Fprintln(os.Stderr, "veloinstr: empty trace: the instrumented program emitted 0 operations (crashed before its first event?)")
		return 2
	}
	// Cross-check the shim's emission counter against what actually
	// arrived: a producer that died after the pipe broke — or a pipe
	// that dropped a suffix — must not be checked as a clean prefix.
	if err := checkTrailer(runtimeComments, int64(len(tr))); err != nil {
		fmt.Fprintln(os.Stderr, "veloinstr:", err)
		return 2
	}
	if err := trace.Validate(tr); err != nil {
		fmt.Fprintln(os.Stderr, "veloinstr: instrumentation produced an ill-formed trace:", err)
		return 2
	}
	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			fmt.Fprintln(os.Stderr, "veloinstr:", err)
			return 2
		}
		if err := trace.Marshal(f, tr); err == nil {
			err = f.Close()
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "veloinstr:", err)
			return 2
		}
	}

	// Every registered engine walks the same trace; the offline oracle
	// arbitrates. The optimized run carries the span/metrics hooks (it
	// is the production engine whose pipeline the timeline is for).
	results := make(map[string]*core.Result, len(core.Engines()))
	for _, info := range core.Engines() {
		eopts := core.Options{Engine: info.Engine}
		if info.Engine == core.Optimized {
			eopts.Spans = sb
			if *obsJSON {
				eopts.Metrics = reg
			}
		}
		engStart := tracer.Now()
		if *parallel > 1 {
			results[info.Name] = pipeline.CheckTrace(tr, eopts, pipeline.Config{Workers: *parallel})
		} else {
			results[info.Name] = core.CheckTrace(tr, eopts)
		}
		if sb != nil {
			now := tracer.Now()
			chk := sb.Emit("check:"+info.Name, root, engStart, now)
			sb.AttrInt(chk, "ops", int64(len(tr)))
			if info.Engine == core.Optimized {
				sb.EmitStages(chk, engStart, now, nil, span.StageFilter, span.StageGraph)
			}
		}
	}
	optimized := results["optimized"]
	oracleStart := tracer.Now()
	offline, _ := serial.Check(tr)
	sb.Emit("oracle", root, oracleStart, tracer.Now())
	if tracer != nil {
		sb.End(root)
		sb.Flush()
		if err := tracer.WriteChromeFile(*spanOut); err != nil {
			fmt.Fprintln(os.Stderr, "veloinstr: trace-out:", err)
			return 2
		}
		fmt.Fprintf(os.Stderr, "veloinstr: wrote pipeline trace to %s\n", *spanOut)
	}

	reg.Counter("instr_trace_ops").Add(int64(len(tr)))
	if *obsJSON {
		defer reg.Snapshot().WriteJSON(os.Stderr)
	}

	for _, c := range runtimeComments {
		fmt.Println("#", c)
	}
	fmt.Printf("trace: %d operations (%d access sites instrumented, %d pruned)\n",
		len(tr), out.SitesEmitted, out.SitesPruned)

	for name, res := range results {
		if res.Serializable != offline {
			fmt.Fprintf(os.Stderr,
				"veloinstr: INTERNAL DISAGREEMENT: %s=%v oracle=%v\n",
				name, res.Serializable, offline)
			return 2
		}
	}
	if optimized.Serializable {
		fmt.Printf("serializable: %s engines agree, serial oracle confirms\n", core.EngineNames())
		return 0
	}
	fmt.Printf("NOT serializable: %d warnings (optimized); %s engines and serial oracle agree\n",
		len(optimized.Warnings), core.EngineNames())
	for _, w := range optimized.Warnings {
		fmt.Println(w)
	}
	return 1
}

// checkTrailer cross-checks the shim's end-of-run summary comment
// ("velo events emitted=N pruned=M") against the operations actually
// received. A missing trailer means the producer never reached
// _velo_done; a count mismatch means events were lost in flight. Either
// way the received trace is a truncated prefix and checking it would be
// a silent false negative.
func checkTrailer(comments []string, received int64) error {
	for i := len(comments) - 1; i >= 0; i-- {
		var emitted, pruned int64
		if _, err := fmt.Sscanf(comments[i], "velo events emitted=%d pruned=%d", &emitted, &pruned); err == nil {
			if emitted != received {
				return fmt.Errorf("partial trace: producer emitted %d events but %d arrived", emitted, received)
			}
			return nil
		}
	}
	return fmt.Errorf("partial trace: runtime summary trailer missing (producer died before flushing?)")
}

// runViaServer executes the instrumented package with its trace pipe
// streamed straight to a velodromed daemon, and relays the daemon's
// verdict. The child's bytes flow through untouched — the daemon does
// the decoding — so a multi-gigabyte run never materializes here.
func runViaServer(dir, addr, name string, out *instr.Output) int {
	pr, pw, err := os.Pipe()
	if err != nil {
		fmt.Fprintln(os.Stderr, "veloinstr:", err)
		return 2
	}
	cmd := exec.Command("go", "run", ".")
	cmd.Dir = dir
	cmd.Stdout = os.Stdout
	cmd.Stderr = os.Stderr
	cmd.ExtraFiles = []*os.File{pw} // becomes fd 3 in the child
	cmd.Env = append(os.Environ(), "VELO_TRACE=fd:3")
	if err := cmd.Start(); err != nil {
		pr.Close()
		pw.Close()
		fmt.Fprintln(os.Stderr, "veloinstr:", err)
		return 2
	}
	pw.Close() // child holds the write end now

	hdr := trace.SessionHeader{Engine: "optimized", Name: sanitizeName(name)}
	v, cerr := server.CheckReader(addr, hdr, pr)
	io.Copy(io.Discard, pr) // drain if the daemon bailed early, so the child can exit
	pr.Close()
	werr := cmd.Wait()

	// The child's own failure wins: a broken-pipe diagnostic from the
	// shim (exit 3) means the daemon saw a truncated stream, whatever
	// its verdict says.
	if werr != nil {
		fmt.Fprintf(os.Stderr, "veloinstr: go run: %v (partial trace streamed to %s)\n", werr, addr)
		return 2
	}
	if cerr != nil {
		fmt.Fprintln(os.Stderr, "veloinstr:", cerr)
		return 2
	}
	if v.Status != trace.StatusOK {
		fmt.Fprintf(os.Stderr, "veloinstr: server %s: %s: %s (%d ops consumed)\n", addr, v.Status, v.Error, v.Ops)
		return 2
	}
	if err := checkTrailer(v.Comments, v.Ops); err != nil {
		fmt.Fprintln(os.Stderr, "veloinstr:", err)
		return 2
	}
	for _, c := range v.Comments {
		fmt.Println("#", c)
	}
	fmt.Printf("trace: %d operations (%d access sites instrumented, %d pruned), checked by %s at %s (session %s in %dms)\n",
		v.Ops, out.SitesEmitted, out.SitesPruned, v.Engine, addr, v.Session, v.DurationMs)
	if v.Serializable {
		fmt.Println("serializable")
		return 0
	}
	fmt.Printf("NOT serializable: %d warnings\n", len(v.Warnings))
	for _, w := range v.Warnings {
		fmt.Println(w)
	}
	return 1
}

// sanitizeName makes a package-dir basename safe for the session
// header's space- and '='-free name field.
func sanitizeName(s string) string {
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '-' || r == '_' || r == '.':
			return r
		}
		return '-'
	}, s)
}

// writePackage materializes the instrumented sources, the runtime shim
// and a module file so the output builds standalone with `go run .`.
func writePackage(dir string, out *instr.Output) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	for name, src := range out.Files {
		if err := os.WriteFile(filepath.Join(dir, name), src, 0o644); err != nil {
			return err
		}
	}
	if err := os.WriteFile(filepath.Join(dir, instr.ShimFileName), out.Shim, 0o644); err != nil {
		return err
	}
	gomod := "module veloinstrumented\n\ngo 1.21\n"
	return os.WriteFile(filepath.Join(dir, "go.mod"), []byte(gomod), 0o644)
}

// execAndCollect runs `go run .` in dir with the trace streamed over an
// inherited pipe (fd 3, selected via VELO_TRACE), decoding events as
// they arrive. It returns the complete trace and any runtime summary
// comments (the "velo events emitted=..." trailer).
func execAndCollect(dir string) (trace.Trace, []string, error) {
	pr, pw, err := os.Pipe()
	if err != nil {
		return nil, nil, err
	}
	cmd := exec.Command("go", "run", ".")
	cmd.Dir = dir
	cmd.Stdout = os.Stdout
	cmd.Stderr = os.Stderr
	cmd.ExtraFiles = []*os.File{pw} // becomes fd 3 in the child
	cmd.Env = append(os.Environ(), "VELO_TRACE=fd:3")
	if err := cmd.Start(); err != nil {
		pr.Close()
		pw.Close()
		return nil, nil, err
	}
	pw.Close() // child holds the write end now

	var tr trace.Trace
	dec := trace.NewDecoder(pr)
	var decErr error
	for {
		op, err := dec.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			decErr = err
			break
		}
		tr = append(tr, op)
	}
	io.Copy(io.Discard, pr) // drain after a decode error so the child can exit
	pr.Close()
	if err := cmd.Wait(); err != nil {
		return nil, nil, fmt.Errorf("go run: %w", err)
	}
	if decErr != nil {
		return nil, nil, fmt.Errorf("decoding trace: %w", decErr)
	}
	return tr, dec.Comments, nil
}

func sortedNames(m map[string][]byte) []string {
	names := make([]string, 0, len(m))
	for n := range m {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
