// Command velodrome runs one of the benchmark workloads under a chosen
// dynamic analysis back-end and reports its warnings:
//
//	velodrome -workload elevator                    Velodrome (default)
//	velodrome -workload jbb -backend atomizer       the Atomizer baseline
//	velodrome -workload tsp -backend eraser         Eraser race detection
//	velodrome -workload webl -backend hb            happens-before races
//	velodrome -workload colt -adversarial           Atomizer-guided scheduling
//	velodrome -workload raytracer -dot out.dot      write error graphs
//	velodrome -list                                 list workloads
//
// Warnings from Velodrome are guaranteed violations of conflict-
// serializability in the observed trace; the blamed method, when
// assigned, is not self-serializable (Sections 3–4 of the paper).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/dot"
	"repro/internal/obs"
	"repro/internal/obs/obshttp"
	"repro/internal/pipeline"
	"repro/internal/rr"
	"repro/internal/span"
	"repro/internal/trace"
)

func main() {
	workload := flag.String("workload", "", "benchmark to run (see -list)")
	backend := flag.String("backend", "velodrome", "analysis: velodrome, atomizer, eraser, hb, fasttrack, empty")
	engine := flag.String("engine", "optimized", "with -backend velodrome: the core engine, one of "+core.EngineNames())
	seed := flag.Int64("seed", 1, "scheduler seed")
	scale := flag.Int("scale", 1, "workload scale multiplier")
	adversarial := flag.Bool("adversarial", false, "enable Atomizer-guided adversarial scheduling")
	dotOut := flag.String("dot", "", "write Velodrome error graphs (dot format) to this file")
	record := flag.String("record", "", "write the event stream to this file (binary when it ends in .bin)")
	list := flag.Bool("list", false, "list available workloads")
	describe := flag.Bool("describe", false, "print the workload's method inventory and exit")
	noMerge := flag.Bool("no-merge", false, "disable the merge optimization (Section 4.2)")
	noFilter := flag.Bool("nofilter", false, "disable the redundant-event fast path (Section 5 filtering)")
	stats := flag.Bool("stats", false, "print happens-before graph statistics")
	asJSON := flag.Bool("json", false, "emit velodrome warnings as JSON lines (with -stats: one obs snapshot object)")
	goroutines := flag.Bool("goroutines", false, "run on real goroutines instead of the deterministic scheduler")
	parallel := flag.Int("parallel", 1, "with -backend velodrome: record the run, then check it through the staged pipeline with this many workers")
	forensics := flag.Bool("forensics", false, "enable the event flight recorder (provenance reports on warnings)")
	explain := flag.Bool("explain", false, "print a provenance report per warning (implies -forensics)")
	traceOut := flag.String("trace-out", "", "with -backend velodrome: write a Chrome trace-event timeline of the run (check, filter, graph stages) to this file")
	var oflags obs.CLIFlags
	oflags.Register(flag.CommandLine, obs.FlagMetrics|obs.FlagProfile|obs.FlagHeartbeat)
	flag.Parse()
	logger, err := oflags.Logger(os.Stderr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "velodrome:", err)
		os.Exit(2)
	}
	if *explain {
		*forensics = true
	}

	if *list {
		for _, w := range bench.All() {
			fmt.Printf("%-11s %6d lines  %s\n", w.Name, w.JavaLines, w.Desc)
		}
		return
	}
	w := bench.ByName(*workload)
	if w == nil {
		fmt.Fprintf(os.Stderr, "velodrome: unknown workload %q (use -list)\n", *workload)
		os.Exit(2)
	}
	if *describe {
		fmt.Print(w.Describe())
		return
	}

	// One registry observes the whole stack: the checker (per-kind step
	// latencies, warnings), the happens-before graph (nodes, edges, GC)
	// and the scheduler (steps, events, threads). A nil registry makes
	// the engines skip the clock entirely, so it is attached only when
	// the run is actually observed — an unobserved run costs exactly
	// what it did before the instrumentation existed.
	var reg *obs.Registry
	if oflags.MetricsAddr != "" || oflags.Heartbeat > 0 || *stats {
		reg = obs.NewRegistry()
	}
	if oflags.MetricsAddr != "" {
		_, addr, err := obshttp.Serve(oflags.MetricsAddr, reg)
		if err != nil {
			logger.Error("metrics server failed", "error", err)
			os.Exit(2)
		}
		logger.Info("serving metrics", "url", "http://"+addr.String())
	}
	stopProf, profPath, err := oflags.StartProfile()
	if err != nil {
		logger.Error("profile failed", "error", err)
		os.Exit(2)
	}
	defer func() {
		if err := stopProf(); err != nil {
			logger.Error("profile failed", "error", err)
			return
		}
		if profPath != "" {
			logger.Info("wrote profile", "kind", oflags.Profile, "path", profPath)
		}
	}()

	// The pipeline tracer: inert (nil) without -trace-out, so the traced
	// and untraced paths run identical code. The scheduler serializes
	// backend calls, so one buffer serves the whole run.
	var tracer *span.Tracer
	var sbuf *span.Buf
	var root span.SpanID
	if *traceOut != "" {
		if *backend != "velodrome" {
			fmt.Fprintln(os.Stderr, "velodrome: -trace-out requires -backend velodrome")
			os.Exit(2)
		}
		tracer = span.New()
		sbuf = tracer.Buffer("velodrome")
		root = sbuf.Start("run", 0)
		sbuf.AttrStr(root, "workload", w.Name)
	}

	einfo, ok := core.EngineByName(*engine)
	if !ok {
		fmt.Fprintf(os.Stderr, "velodrome: unknown engine %q (want %s)\n", *engine, core.EngineNames())
		os.Exit(2)
	}

	copts := core.Options{Engine: einfo.Engine, NoMerge: *noMerge, NoFilter: *noFilter, Metrics: reg, Forensics: *forensics, Spans: sbuf}
	var be rr.Backend
	var velo *rr.Velodrome
	pipelined := *parallel > 1 && *backend == "velodrome"
	switch *backend {
	case "velodrome":
		if pipelined {
			// Parallel checking: the scheduler records the trace against
			// an empty back-end, and the staged pipeline checks it after
			// the run (the captured checker backs the reporting below).
			velo = &rr.Velodrome{}
			be = &rr.Empty{}
		} else {
			velo = rr.NewVelodrome(copts)
			be = velo
		}
	case "atomizer":
		be = rr.NewAtomizer()
	case "eraser":
		be = rr.NewEraser()
	case "hb":
		be = rr.NewHB()
	case "fasttrack":
		be = rr.NewFastTrack()
	case "empty":
		be = &rr.Empty{}
	default:
		fmt.Fprintf(os.Stderr, "velodrome: unknown backend %q\n", *backend)
		os.Exit(2)
	}

	opts := rr.Options{Seed: *seed, Backend: be, Record: *record != "" || pipelined, Parallel: *goroutines, Metrics: reg}
	if *adversarial {
		adv := rr.NewAtomizerAdvisor()
		opts.Backend = rr.Multi{be, adv}
		opts.Advisor = adv
		opts.ParkSteps = 40
	}
	if oflags.Heartbeat > 0 {
		events := reg.Counter("rr_events_total")
		alive := reg.Gauge("graph_nodes_alive")
		warns := reg.Counter("velodrome_warnings_total")
		rate := obs.NewRate(time.Now())
		stopHB := obs.StartHeartbeat(os.Stderr, oflags.Heartbeat, func() string {
			ev := events.Value()
			return fmt.Sprintf("heartbeat: %d events (%.0f/s), %d live nodes, %d warnings",
				ev, rate.Per(ev, time.Now()), alive.Value(), warns.Value())
		})
		defer stopHB()
	}
	checkStart := tracer.Now()
	rep := rr.Run(opts, func(t *rr.Thread) {
		w.Body(t, bench.Params{Scale: *scale})
	})
	if pipelined {
		pipeline.CheckTrace(rep.Trace, copts, pipeline.Config{
			Workers: *parallel,
			Tracer:  tracer,
			OnChecker: func(c core.Checker) {
				velo.Checker = c
			},
		})
		be = velo
	}
	if sbuf != nil {
		// rr.Run has returned, so every backend Step (and its AddStage
		// bookkeeping) is sequenced before this point.
		now := tracer.Now()
		chk := sbuf.Emit("check", root, checkStart, now)
		sbuf.AttrInt(chk, "events", int64(rep.Events))
		sbuf.EmitStages(chk, checkStart, now, nil,
			span.StageFilter, span.StageGraph, span.StageForensics)
		sbuf.End(root)
		sbuf.Flush()
		if err := tracer.WriteChromeFile(*traceOut); err != nil {
			fmt.Fprintln(os.Stderr, "velodrome: trace-out:", err)
			os.Exit(2)
		}
		fmt.Fprintf(os.Stderr, "velodrome: wrote pipeline trace to %s\n", *traceOut)
	}
	if *record != "" {
		f, err := os.Create(*record)
		if err != nil {
			fmt.Fprintln(os.Stderr, "velodrome:", err)
			os.Exit(1)
		}
		marshal := trace.Marshal
		if strings.HasSuffix(*record, ".bin") {
			marshal = trace.MarshalBinary
		}
		if err := marshal(f, rep.Trace); err != nil {
			fmt.Fprintln(os.Stderr, "velodrome:", err)
			os.Exit(1)
		}
		f.Close()
		fmt.Printf("recorded %d events to %s\n", len(rep.Trace), *record)
	}
	if !*asJSON {
		fmt.Printf("%s: %d threads, %d events, %d scheduling steps", w.Name, rep.Threads, rep.Events, rep.Steps)
		if rep.Delays > 0 {
			fmt.Printf(", %d adversarial delays", rep.Delays)
		}
		fmt.Println()
	}
	if rep.Deadlocked {
		fmt.Println("run DEADLOCKED")
	}
	if rep.Truncated {
		fmt.Println("run truncated by step limit")
	}

	switch b := be.(type) {
	case *rr.Velodrome:
		sums := core.Summarize(b.Warnings())
		if *asJSON {
			enc := json.NewEncoder(os.Stdout)
			for _, s := range sums {
				if err := enc.Encode(s.First.JSON()); err != nil {
					fmt.Fprintln(os.Stderr, "velodrome:", err)
					os.Exit(1)
				}
				if rep := s.First.Forensics(); *explain && rep != nil {
					if err := enc.Encode(rep); err != nil {
						fmt.Fprintln(os.Stderr, "velodrome:", err)
						os.Exit(1)
					}
				}
			}
			if *stats {
				// -stats -json: the full obs snapshot as one JSON object
				// (counters, gauges, latency histograms) in place of the
				// human-readable graph table, for scraping tools.
				if err := reg.Snapshot().WriteJSON(os.Stdout); err != nil {
					fmt.Fprintln(os.Stderr, "velodrome:", err)
					os.Exit(1)
				}
			}
			return
		}
		fmt.Printf("velodrome: %d warnings across %d methods\n", len(b.Warnings()), len(sums))
		for _, s := range sums {
			fmt.Printf("[%d warnings, %d increasing]\n%s\n", s.Count, s.Increasing, s.First)
			if rep := s.First.Forensics(); *explain && rep != nil {
				rep.WriteText(os.Stdout)
			}
		}
		if *stats {
			st := b.Checker.Stats()
			fmt.Printf("graph: allocated=%d maxAlive=%d collected=%d merged=%d recycled=%d\n",
				st.Allocated, st.MaxAlive, st.Collected, st.Merged, st.Recycled)
			fmt.Printf("filter: events=%d edgeMemoHits=%d\n",
				b.Checker.Filtered(), st.FilteredEdges)
		}
		if *dotOut != "" {
			var firsts []*core.Warning
			for _, s := range sums {
				firsts = append(firsts, s.First)
			}
			out := dot.RenderAll(firsts)
			if *forensics {
				// With the recorder on, the provenance rendering carries
				// trace spans and access pairs the plain one cannot.
				var b strings.Builder
				for i, w := range firsts {
					if i > 0 {
						b.WriteByte('\n')
					}
					if rep := w.Forensics(); rep != nil {
						b.WriteString(dot.RenderReport(rep))
					} else {
						b.WriteString(dot.Render(w))
					}
				}
				out = b.String()
			}
			if err := os.WriteFile(*dotOut, []byte(out), 0o644); err != nil {
				fmt.Fprintln(os.Stderr, "velodrome:", err)
				os.Exit(1)
			}
			fmt.Printf("wrote %d error graphs to %s\n", len(firsts), *dotOut)
		}
	case *rr.Atomizer:
		fmt.Printf("atomizer: %d warnings\n", len(b.Warnings()))
		seen := map[string]bool{}
		for _, warn := range b.Warnings() {
			if m := string(warn.Label); !seen[m] {
				seen[m] = true
				fmt.Println(warn)
			}
		}
	case *rr.Eraser:
		fmt.Printf("eraser: %d potential races\n", len(b.Warnings()))
		for _, warn := range b.Warnings() {
			fmt.Println(warn)
		}
	case *rr.HB:
		fmt.Printf("happens-before: %d races\n", len(b.Races()))
		for _, r := range b.Races() {
			fmt.Println(r)
		}
	case *rr.FastTrack:
		fmt.Printf("fasttrack: %d racy variables\n", len(b.Races()))
		for _, r := range b.Races() {
			fmt.Println(r)
		}
	case *rr.Empty:
		fmt.Printf("empty backend consumed %d events\n", b.Count)
	}
}
