// Command velobench regenerates the evaluation of the Velodrome paper
// (PLDI 2008, Section 6) on the Go reproduction:
//
//	velobench -table 1             Table 1 (timings + graph statistics)
//	velobench -table 2             Table 2 (Atomizer vs Velodrome warnings)
//	velobench -table 2 -adversarial   ... with the adversarial scheduler
//	velobench -replay              per-event analysis cost on recorded traces
//	velobench -baseline            filter on/off hot-path baseline → BENCH_core.json
//	velobench -pipeline            parallel-pipeline scaling sweep → BENCH_pipeline.json
//	velobench -pipeline -smoke     verify pipeline identity + throughput vs the committed report
//	velobench -smoke               every engine's verdicts on the loop regime; exit 1 on drift
//	velobench -inject              the 30% → 70% defect-injection study
//	velobench -policies            compare adversarial pause policies
//	velobench -ablate              merge/GC design-choice ablation
//	velobench -all                 everything
//
// Each table prints the paper's published numbers alongside the measured
// ones. See EXPERIMENTS.md for the recorded comparison.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/core"
	"repro/internal/exper"
	"repro/internal/obs"
	"repro/internal/obs/obshttp"
	"repro/internal/report"
	"repro/internal/span"
)

func main() {
	table := flag.Int("table", 0, "reproduce table 1 or 2")
	replay := flag.Bool("replay", false, "measure per-event analysis cost on recorded traces")
	baseline := flag.Bool("baseline", false, "replay the workload suite through both engines, filter on and off")
	smoke := flag.Bool("smoke", false, "cross-check every registered engine's verdicts on the loop-regime family; exit 1 on drift")
	inject := flag.Bool("inject", false, "run the defect-injection experiment")
	policyStudy := flag.Bool("policies", false, "compare adversarial pause policies on the injection trials")
	ablate := flag.Bool("ablate", false, "ablate the merge and GC design choices per benchmark")
	coverage := flag.Bool("coverage", false, "cumulative warnings per run (most appear on the first run)")
	all := flag.Bool("all", false, "run every experiment")
	adversarial := flag.Bool("adversarial", false, "use the Atomizer-guided adversarial scheduler (table 2)")
	scale := flag.Int("scale", 1, "workload scale multiplier")
	timingScale := flag.Int("timing-scale", 20, "scale for table 1 timing runs")
	specFiltered := flag.Bool("spec-filtered", false, "table 1: exempt known non-atomic methods first (the paper's configuration)")
	seeds := flag.String("seeds", "1,2,3,4,5", "comma-separated scheduler seeds (the paper's five runs)")
	detail := flag.Bool("detail", false, "list flagged methods per benchmark (table 2)")
	obsOut := flag.String("obs-out", "BENCH_obs.json", "with -replay: write per-event-kind latency quantiles to this file (empty to disable)")
	baselineOut := flag.String("baseline-out", "BENCH_core.json", "with -baseline: write the filter baseline to this file (empty to disable)")
	pipelineBench := flag.Bool("pipeline", false, "sweep the parallel pipeline over worker counts on synthetic loop-regime traces")
	pipelineOut := flag.String("pipeline-out", "BENCH_pipeline.json", "with -pipeline: write the scaling report to this file (empty to disable); with -pipeline -smoke: the committed report to compare against")
	pipelineEvents := flag.Int("pipeline-events", 10_000_000, "with -pipeline: events in the loop-regime synthetic trace")
	traceOut := flag.String("trace-out", "", "write a Chrome trace-event timeline with one span per experiment to this file")
	var oflags obs.CLIFlags
	oflags.Register(flag.CommandLine, obs.FlagMetrics|obs.FlagProfile)
	flag.Parse()
	logger, err := oflags.Logger(os.Stderr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "velobench:", err)
		os.Exit(2)
	}

	seedList, err := parseSeeds(*seeds)
	if err != nil {
		fmt.Fprintln(os.Stderr, "velobench:", err)
		os.Exit(2)
	}
	// The experiments time freshly constructed engines, so they stay
	// uninstrumented; the registry observes velobench itself and backs
	// the optional live endpoint (whose main payload here is pprof).
	reg := obs.NewRegistry()
	experiments := reg.Counter("velobench_experiments_total")
	if oflags.MetricsAddr != "" {
		_, addr, err := obshttp.Serve(oflags.MetricsAddr, reg)
		if err != nil {
			logger.Error("metrics server failed", "error", err)
			os.Exit(2)
		}
		logger.Info("serving metrics", "url", "http://"+addr.String())
	}
	stopProf, profPath, err := oflags.StartProfile()
	if err != nil {
		logger.Error("profile failed", "error", err)
		os.Exit(2)
	}
	defer func() {
		if err := stopProf(); err != nil {
			logger.Error("profile failed", "error", err)
			return
		}
		if profPath != "" {
			logger.Info("wrote profile", "kind", oflags.Profile, "path", profPath)
		}
	}()
	// The experiment tracer: inert (nil) without -trace-out. Each
	// experiment becomes one span on the exported timeline.
	var tracer *span.Tracer
	var sb *span.Buf
	var root span.SpanID
	if *traceOut != "" {
		tracer = span.New()
		sb = tracer.Buffer("velobench")
		root = sb.Start("velobench", 0)
	}
	ran := false
	// mark opens one experiment: it flips the ran flag, counts the
	// experiment, and returns a closure that closes its span.
	mark := func(name string) func() {
		ran = true
		experiments.Inc()
		id := sb.Start(name, root)
		return func() { sb.End(id) }
	}
	if *table == 1 || *all {
		done := mark("table1")
		var rows []exper.Table1Row
		if *specFiltered {
			fmt.Println("(known non-atomic methods exempted, as in the paper's measurement setup)")
			rows = exper.Table1SpecFiltered(seedList[0], *timingScale)
		} else {
			rows = exper.Table1(seedList[0], *timingScale)
		}
		report.Table1(os.Stdout, rows)
		fmt.Println()
		done()
	}
	if *table == 2 || *all {
		done := mark("table2")
		rows := exper.Table2(seedList, *scale, *adversarial)
		if *adversarial {
			fmt.Println("(adversarial scheduling enabled)")
		}
		report.Table2(os.Stdout, rows)
		if *detail {
			fmt.Println()
			report.MethodDetail(os.Stdout, rows)
		}
		fmt.Println()
		done()
	}
	if *replay || *all {
		done := mark("replay")
		rows := exper.Replay(seedList[0], *scale*10)
		report.Replay(os.Stdout, rows)
		fmt.Println()
		if *obsOut != "" {
			// Machine-readable per-event-kind latency quantiles — the
			// perf-trajectory seed for future PRs (see EXPERIMENTS.md).
			rep := exper.ReplayObs(seedList[0], *scale*10)
			f, err := os.Create(*obsOut)
			if err == nil {
				err = rep.WriteJSON(f)
				if cerr := f.Close(); err == nil {
					err = cerr
				}
			}
			if err != nil {
				fmt.Fprintln(os.Stderr, "velobench:", err)
				os.Exit(1)
			}
			fmt.Printf("wrote per-event-kind latency quantiles to %s\n\n", *obsOut)
		}
		done()
	}
	if *baseline || *all {
		done := mark("baseline")
		rep := exper.Baseline(seedList[0], *scale*10)
		report.Baseline(os.Stdout, rep)
		fmt.Println()
		if *baselineOut != "" {
			f, err := os.Create(*baselineOut)
			if err == nil {
				err = rep.WriteJSON(f)
				if cerr := f.Close(); err == nil {
					err = cerr
				}
			}
			if err != nil {
				fmt.Fprintln(os.Stderr, "velobench:", err)
				os.Exit(1)
			}
			fmt.Printf("wrote filter baseline to %s\n\n", *baselineOut)
		}
		done()
	}
	if *pipelineBench {
		done := mark("pipeline")
		if *smoke {
			// CI mode: compare a reduced re-measurement against the
			// committed report. Verdict identity is unconditional;
			// throughput only gates on a matching host.
			f, err := os.Open(*pipelineOut)
			if err != nil {
				fmt.Fprintln(os.Stderr, "velobench:", err)
				os.Exit(1)
			}
			committed, err := exper.ReadPipeline(f)
			f.Close()
			if err != nil {
				fmt.Fprintln(os.Stderr, "velobench:", err)
				os.Exit(1)
			}
			ok := exper.PipelineSmoke(committed, os.Stdout)
			done()
			if !ok {
				os.Exit(1)
			}
			fmt.Printf("pipeline smoke passed against %s\n\n", *pipelineOut)
		} else {
			rep := exper.Pipeline(*pipelineEvents)
			report.Pipeline(os.Stdout, rep)
			if *pipelineOut != "" {
				f, err := os.Create(*pipelineOut)
				if err == nil {
					err = rep.WriteJSON(f)
					if cerr := f.Close(); err == nil {
						err = cerr
					}
				}
				if err != nil {
					fmt.Fprintln(os.Stderr, "velobench:", err)
					os.Exit(1)
				}
				fmt.Printf("wrote pipeline scaling report to %s\n\n", *pipelineOut)
			}
			done()
		}
	}
	if (*smoke && !*pipelineBench) || *all {
		done := mark("smoke")
		rows := exper.Smoke(seedList[0], *scale*10)
		var engineCols []string
		for _, info := range core.Engines() {
			engineCols = append(engineCols, info.Name)
		}
		report.Smoke(os.Stdout, rows, engineCols)
		fmt.Println()
		drift := false
		for _, r := range rows {
			if r.Drift != "" {
				fmt.Fprintf(os.Stderr, "velobench: engine drift on %s: %s\n", r.Workload, r.Drift)
				drift = true
			}
		}
		done()
		if drift {
			os.Exit(1)
		}
	}
	if *inject || *all {
		done := mark("inject")
		res := exper.Inject([]string{"elevator", "colt"}, seedList, *scale)
		report.Inject(os.Stdout, res)
		fmt.Println()
		done()
	}
	if *coverage || *all {
		done := mark("coverage")
		report.Coverage(os.Stdout, exper.Coverage(seedList, *scale))
		fmt.Println()
		done()
	}
	if *ablate || *all {
		done := mark("ablate")
		rows := exper.Ablate(seedList[0], *scale*5)
		report.Ablate(os.Stdout, rows)
		fmt.Println()
		done()
	}
	if *policyStudy || *all {
		done := mark("policies")
		res := exper.PolicyStudy([]string{"elevator", "colt"}, seedList, *scale)
		report.Policies(os.Stdout, res)
		fmt.Println()
		done()
	}
	if !ran {
		flag.Usage()
		os.Exit(2)
	}
	if tracer != nil {
		sb.End(root)
		sb.Flush()
		if err := tracer.WriteChromeFile(*traceOut); err != nil {
			fmt.Fprintln(os.Stderr, "velobench: trace-out:", err)
			os.Exit(1)
		}
		fmt.Printf("wrote experiment timeline to %s\n", *traceOut)
	}
}

func parseSeeds(s string) ([]int64, error) {
	var out []int64
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		var v int64
		if _, err := fmt.Sscanf(part, "%d", &v); err != nil {
			return nil, fmt.Errorf("bad seed %q", part)
		}
		out = append(out, v)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no seeds given")
	}
	return out, nil
}
